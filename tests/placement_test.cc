// The placement subsystem (DESIGN.md §13): table/store semantics, the three
// PlacementPolicy implementations, the demand accumulator, O(1) routing in
// the live platform, concurrent table swaps, the placement.rebalance fault
// point, and the end-to-end §5.1 claim that model sharing-aware placement
// beats hashing — in the live platform and the simulator, through the same
// policy implementations.

#include "src/placement/placement.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/fault.h"
#include "src/core/platform.h"
#include "src/placement/manager.h"
#include "src/sim/simulator.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

// --- PlacementTable / PlacementStore -----------------------------------------

TEST(PlacementTableTest, NodeOfAndHashFallback) {
  Placement assignment = {{"a", 0}, {"b", 1}, {"stray", 7}};
  const PlacementTable table(3, BalancerKind::kHash, 2, assignment);
  EXPECT_EQ(table.version(), 3u);
  EXPECT_EQ(table.num_nodes(), 2);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.NodeOf("a"), 0);
  EXPECT_EQ(table.NodeOf("b"), 1);
  EXPECT_EQ(table.NodeOf("missing"), -1);
  // Out-of-range assignments are clamped into [0, num_nodes).
  const int stray = table.NodeOf("stray");
  EXPECT_GE(stray, 0);
  EXPECT_LT(stray, 2);
  // Unknown functions route by hash instead of failing.
  const int hashed = table.NodeOrHash("missing");
  EXPECT_GE(hashed, 0);
  EXPECT_LT(hashed, 2);
  EXPECT_EQ(table.NodeOrHash("a"), 0);
}

TEST(PlacementTableTest, NodeFunctionCounts) {
  const PlacementTable table(1, BalancerKind::kHash, 3, {{"a", 0}, {"b", 0}, {"c", 2}});
  const std::vector<size_t> counts = table.NodeFunctionCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(PlacementStoreTest, SwapPublishesNewTable) {
  PlacementStore store(nullptr);  // Seeds an empty version-0 table.
  ASSERT_NE(store.Snapshot(), nullptr);
  EXPECT_EQ(store.Version(), 0u);
  store.Swap(std::make_shared<const PlacementTable>(5, BalancerKind::kHash, 2,
                                                    Placement{{"a", 1}}));
  EXPECT_EQ(store.Version(), 5u);
  EXPECT_EQ(store.Snapshot()->NodeOf("a"), 1);
}

TEST(BalancerKindIdTest, RoundTripsIdsAndNames) {
  for (const BalancerKind kind :
       {BalancerKind::kHash, BalancerKind::kLoadBased, BalancerKind::kModelSharing}) {
    BalancerKind parsed = BalancerKind::kHash;
    ASSERT_TRUE(ParseBalancerKind(BalancerKindId(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    ASSERT_TRUE(ParseBalancerKind(BalancerKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  BalancerKind parsed = BalancerKind::kLoadBased;
  EXPECT_FALSE(ParseBalancerKind("quantum", &parsed));
  EXPECT_EQ(parsed, BalancerKind::kLoadBased);  // Untouched on failure.
}

// --- DemandAccumulator --------------------------------------------------------

TEST(DemandAccumulatorTest, SlotsCumulativeDeltas) {
  DemandAccumulator accumulator(8);
  accumulator.RecordCumulative({{"a", 3}});
  accumulator.RecordCumulative({{"a", 10}, {"b", 4}});
  const auto history = accumulator.History();
  ASSERT_EQ(accumulator.Slots(), 2u);
  ASSERT_EQ(history.at("a").size(), 2u);
  EXPECT_DOUBLE_EQ(history.at("a")[0], 3.0);
  EXPECT_DOUBLE_EQ(history.at("a")[1], 7.0);
  // A function appearing late is zero-backfilled so series stay aligned.
  ASSERT_EQ(history.at("b").size(), 2u);
  EXPECT_DOUBLE_EQ(history.at("b")[0], 0.0);
  EXPECT_DOUBLE_EQ(history.at("b")[1], 4.0);
}

TEST(DemandAccumulatorTest, TrimsToMaxSlots) {
  DemandAccumulator accumulator(2);
  accumulator.RecordCumulative({{"a", 1}});
  accumulator.RecordCumulative({{"a", 2}});
  accumulator.RecordCumulative({{"a", 5}});
  EXPECT_EQ(accumulator.Slots(), 2u);
  const auto history = accumulator.History();
  ASSERT_EQ(history.at("a").size(), 2u);
  EXPECT_DOUBLE_EQ(history.at("a")[0], 1.0);
  EXPECT_DOUBLE_EQ(history.at("a")[1], 3.0);
}

TEST(DemandAccumulatorTest, FirstSampleCountsCumulativeTotal) {
  // The first harvest has no baseline, so the whole cumulative total lands in
  // the first slot — correct by design: for a fresh accumulator the total IS
  // the demand observed since the window opened.
  DemandAccumulator accumulator(8);
  accumulator.RecordCumulative({{"a", 5}});
  const auto history = accumulator.History();
  ASSERT_EQ(history.at("a").size(), 1u);
  EXPECT_DOUBLE_EQ(history.at("a")[0], 5.0);
}

TEST(DemandAccumulatorTest, CounterResetClampsToZero) {
  // A cumulative counter can regress (process restart, registry reset). The
  // slot clamps to zero instead of going negative or recounting history, and
  // subsequent deltas resume from the new baseline.
  DemandAccumulator accumulator(8);
  accumulator.RecordCumulative({{"a", 10}});
  accumulator.RecordCumulative({{"a", 3}});  // Reset below the baseline.
  accumulator.RecordCumulative({{"a", 7}});
  const auto history = accumulator.History();
  ASSERT_EQ(history.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(history.at("a")[1], 0.0);
  EXPECT_DOUBLE_EQ(history.at("a")[2], 4.0);
}

TEST(DemandAccumulatorTest, WraparoundKeepsSeriesAligned) {
  // Once the ring is full every close trims the oldest slot from *every*
  // series, including ones for functions that appeared late — lengths must
  // stay equal or the correlation term would misalign slots across functions.
  DemandAccumulator accumulator(3);
  accumulator.RecordCumulative({{"a", 1}});
  accumulator.RecordCumulative({{"a", 2}, {"b", 10}});
  accumulator.RecordCumulative({{"a", 3}, {"b", 20}});
  accumulator.RecordCumulative({{"a", 4}, {"b", 30}});  // First trim.
  accumulator.RecordCumulative({{"a", 5}, {"b", 40}});
  EXPECT_EQ(accumulator.Slots(), 3u);
  const auto history = accumulator.History();
  ASSERT_EQ(history.at("a").size(), 3u);
  ASSERT_EQ(history.at("b").size(), 3u);
  EXPECT_DOUBLE_EQ(history.at("a")[0], 1.0);  // Slots 3..5 survive.
  EXPECT_DOUBLE_EQ(history.at("a")[2], 1.0);
  EXPECT_DOUBLE_EQ(history.at("b")[0], 10.0);
  EXPECT_DOUBLE_EQ(history.at("b")[2], 10.0);
}

TEST(DemandAccumulatorTest, AbsentFunctionKeepsItsBaseline) {
  // Regression: a function missing from one harvest (e.g. its counter was
  // not yet bound) must keep its cumulative baseline. Replacing the baseline
  // map wholesale made the function's entire historical total reappear as a
  // single slot's demand on the next harvest.
  DemandAccumulator accumulator(8);
  accumulator.RecordCumulative({{"a", 5}, {"b", 2}});
  accumulator.RecordCumulative({{"a", 8}});            // b absent this harvest.
  accumulator.RecordCumulative({{"a", 8}, {"b", 3}});  // b reappears.
  const auto history = accumulator.History();
  ASSERT_EQ(history.at("b").size(), 3u);
  EXPECT_DOUBLE_EQ(history.at("b")[1], 0.0);  // No demand observed while absent.
  EXPECT_DOUBLE_EQ(history.at("b")[2], 1.0);  // Delta from baseline 2, not 0.
}

// --- Policies -----------------------------------------------------------------

TEST(PlacementPolicyTest, HashPlaceOneMatchesBatchCompute) {
  const PlacementOptions options{BalancerKind::kHash};
  const auto policy = MakePlacementPolicy(options, nullptr);
  const Model model = TinyVgg(11);
  const PlacementTable current(1, BalancerKind::kHash, 4, {});
  const int incremental = policy->PlaceOne(model, {}, current);
  const Placement batch = policy->Compute({&model}, {}, 4);
  EXPECT_EQ(incremental, batch.at(model.name()));
}

TEST(PlacementPolicyTest, ModelSharingRequiresCostModel) {
  EXPECT_THROW(MakePlacementPolicy(PlacementOptions{BalancerKind::kModelSharing}, nullptr),
               std::invalid_argument);
}

TEST(PlacementPolicyTest, ModelSharingPlaceOneFollowsSimilarPeers) {
  AnalyticCostModel costs;
  PlacementOptions options;
  options.kind = BalancerKind::kModelSharing;
  const auto policy = MakePlacementPolicy(options, &costs);
  const Model vgg_a = TinyVgg(11);
  const Model vgg_b = TinyVgg(13);
  const Model bert_a = TinyBert(2, 64);
  const Model bert_b = TinyBert(4, 64);
  // Four peers already placed pair-per-node with slack (cap allows a fifth on
  // either node): a new vgg16 should join the vgg node, not the bert node.
  const PlacementTable current(
      1, BalancerKind::kModelSharing, 2,
      {{vgg_a.name(), 0}, {vgg_b.name(), 0}, {bert_a.name(), 1}, {bert_b.name(), 1}});
  const Model newcomer = TinyVgg(16);
  const int node =
      policy->PlaceOne(newcomer, {&vgg_a, &vgg_b, &bert_a, &bert_b}, current);
  EXPECT_EQ(node, 0);
}

TEST(PlacementPolicyTest, LoadBasedPlaceOnePicksEmptiestNode) {
  const auto policy = MakePlacementPolicy(PlacementOptions{BalancerKind::kLoadBased}, nullptr);
  const PlacementTable current(1, BalancerKind::kLoadBased, 3, {{"x", 0}, {"y", 0}, {"z", 2}});
  const Model model = TinyVgg(11);
  EXPECT_EQ(policy->PlaceOne(model, {}, current), 1);
}

// --- PlacementManager ---------------------------------------------------------

TEST(PlacementManagerTest, AddFunctionBumpsVersionIncrementally) {
  AnalyticCostModel costs;
  PlacementManagerOptions options;
  options.num_nodes = 2;
  PlacementManager manager(options, &costs, nullptr);
  EXPECT_EQ(manager.Version(), 0u);
  const Model vgg = TinyVgg(11);
  manager.AddFunction(vgg, {});
  EXPECT_EQ(manager.Version(), 1u);
  const int node = manager.Route(vgg.name());
  EXPECT_GE(node, 0);
  EXPECT_LT(node, 2);
  // Re-adding is a no-op (no version churn).
  manager.AddFunction(vgg, {});
  EXPECT_EQ(manager.Version(), 1u);
}

TEST(PlacementManagerTest, RebalanceDueFiresOncePerInterval) {
  AnalyticCostModel costs;
  PlacementManagerOptions options;
  options.num_nodes = 1;
  options.rebalance_interval = 100.0;
  PlacementManager manager(options, &costs, nullptr);
  EXPECT_FALSE(manager.RebalanceDue(50.0));
  EXPECT_TRUE(manager.RebalanceDue(100.0));
  EXPECT_FALSE(manager.RebalanceDue(150.0));  // Already claimed for this window.
  EXPECT_TRUE(manager.RebalanceDue(250.0));
}

TEST(PlacementManagerTest, StatsJsonCarriesVersionAndPolicy) {
  AnalyticCostModel costs;
  PlacementManagerOptions options;
  options.num_nodes = 2;
  PlacementManager manager(options, &costs, nullptr);
  const Model vgg = TinyVgg(11);
  manager.AddFunction(vgg, {});
  const std::string json = manager.StatsJson();
  EXPECT_NE(json.find("\"version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"policy\":\"model_sharing\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"functions\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"node_functions\":["), std::string::npos) << json;
}

// --- O(1) routing regression --------------------------------------------------

// A warm hit must take exactly one node lock, independent of cluster size —
// the regression hook for the old O(num_nodes) scan in Invoke.
TEST(PlacementRoutingTest, WarmHitLockCountIndependentOfNumNodes) {
  const std::vector<float> input(8, 0.5f);
  for (const int num_nodes : {1, 32}) {
    AnalyticCostModel costs;
    PlatformOptions options;
    options.num_nodes = num_nodes;
    options.containers_per_node = 2;
    OptimusPlatform platform(&costs, options);
    platform.Deploy("vgg", TinyVgg(11));
    platform.Invoke("vgg", input, 0.0);  // Cold; container now resident.
    const uint64_t before = platform.NodeLockAcquisitions();
    platform.Invoke("vgg", input, 1.0);
    const uint64_t locks_for_warm_hit = platform.NodeLockAcquisitions() - before;
    EXPECT_EQ(locks_for_warm_hit, 1u) << "num_nodes=" << num_nodes;
  }
}

// --- Concurrent swaps ---------------------------------------------------------

// Invokers race Deploy-driven incremental updates and full rebalances. Every
// reader must see a coherent table: routed nodes stay in range and every
// invocation succeeds. Run under TSan in CI.
TEST(PlacementConcurrencyTest, InvokeDuringDeployAndRebalanceSwaps) {
  AnalyticCostModel costs;
  PlatformOptions options;
  options.num_nodes = 4;
  options.containers_per_node = 2;
  OptimusPlatform platform(&costs, options);
  platform.Deploy("vgg11", TinyVgg(11));
  platform.Deploy("vgg13", TinyVgg(13));

  const std::vector<float> input(8, 0.5f);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> invokers;
  for (int t = 0; t < 3; ++t) {
    invokers.emplace_back([&, t] {
      const std::string function = t % 2 == 0 ? "vgg11" : "vgg13";
      for (int i = 0; !stop.load(std::memory_order_relaxed) && i < 400; ++i) {
        InvokeResult result;
        const Status status =
            platform.TryInvoke(function, input, static_cast<double>(i), &result);
        if (!status.ok() || result.node < 0 || result.node >= 4) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread deployer([&] {
    platform.Deploy("vgg16", TinyVgg(16));
    platform.Deploy("vgg19", TinyVgg(19));
    platform.Deploy("bert", TinyBert(2, 64));
  });
  std::thread rebalancer([&] {
    for (int i = 0; i < 20; ++i) {
      platform.RebalanceNow("manual");
    }
  });
  deployer.join();
  rebalancer.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : invokers) {
    thread.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(platform.PlacementVersion(), 5u);  // 5 deploys + 20 rebalances.
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

// --- placement.rebalance fault point ------------------------------------------

TEST(PlacementFaultTest, FailedRebalanceKeepsPreviousTableServing) {
  AnalyticCostModel costs;
  PlatformOptions options;
  options.num_nodes = 2;
  OptimusPlatform platform(&costs, options);
  platform.Deploy("vgg11", TinyVgg(11));
  platform.Deploy("vgg13", TinyVgg(13));
  const uint64_t version = platform.PlacementVersion();
  const auto table_before = platform.PlacementSnapshot();

  {
    fault::ScopedFaults faults("placement.rebalance=always");
    EXPECT_FALSE(platform.RebalanceNow("manual"));
    EXPECT_EQ(platform.PlacementVersion(), version);  // Table not swapped.
    EXPECT_EQ(platform.PlacementSnapshot().get(), table_before.get());
    EXPECT_EQ(platform.placement().RebalanceFailures(), 1u);
    EXPECT_EQ(fault::Fires("placement.rebalance"), 1u);
    // The previous table keeps serving.
    const std::vector<float> input(8, 0.5f);
    EXPECT_FALSE(platform.Invoke("vgg11", input, 0.0).output.empty());
  }

  // Disarmed: the recompute succeeds and publishes a fresh table.
  EXPECT_TRUE(platform.RebalanceNow("manual"));
  EXPECT_EQ(platform.PlacementVersion(), version + 1);
  EXPECT_EQ(platform.placement().Rebalances(), 1u);
}

// --- End-to-end: model sharing beats hash, live and simulated -----------------

// Two structurally similar pairs (two VGG variants, two BERT variants) rotate
// on a 2-node cluster with one container per node. Model-sharing placement
// co-locates each pair, so every rotation finds a cheap donor (transform);
// hash placement — with names chosen so the pairs split across nodes and each
// pair's round-mates collide — forces eviction cold starts. The suffix search
// below makes the hash layout deterministic rather than name-lucky.
struct PairedWorkload {
  std::vector<std::string> names;  // {a1, a2, b1, b2}.
  std::vector<Model> models;
};

PairedWorkload MakePairedWorkload() {
  const auto node_of = [](const std::string& name) {
    return static_cast<int>(std::hash<std::string>{}(name) % 2);
  };
  for (int suffix = 0; suffix < 512; ++suffix) {
    PairedWorkload workload;
    workload.names = {"vision_a_" + std::to_string(suffix),
                      "vision_b_" + std::to_string(suffix),
                      "text_a_" + std::to_string(suffix),
                      "text_b_" + std::to_string(suffix)};
    // Hash must split both pairs AND co-locate the two functions invoked in
    // the same round (a1 with b1) so their node's single container churns.
    if (node_of(workload.names[0]) == node_of(workload.names[1]) ||
        node_of(workload.names[2]) == node_of(workload.names[3]) ||
        node_of(workload.names[0]) != node_of(workload.names[2])) {
      continue;
    }
    workload.models = {TinyVgg(11), TinyVgg(13), TinyBert(2, 64), TinyBert(4, 64)};
    for (size_t i = 0; i < workload.models.size(); ++i) {
      workload.models[i].set_name(workload.names[i]);
    }
    return workload;
  }
  ADD_FAILURE() << "no hash-splitting suffix found";
  return {};
}

constexpr int kRotationRounds = 8;
constexpr double kRoundGap = 100.0;  // > idle_threshold (60s), < keep_alive.

size_t LiveTransformPlusWarm(BalancerKind kind, const PairedWorkload& workload) {
  AnalyticCostModel costs;
  PlatformOptions options;
  options.num_nodes = 2;
  options.containers_per_node = 1;
  options.route_fallback_breadth = 0;  // Pin requests to their primary node.
  options.placement.kind = kind;
  options.placement.clusters_per_node = 1;  // 2 clusters for the 2 pairs.
  OptimusPlatform platform(&costs, options);
  for (size_t i = 0; i < workload.names.size(); ++i) {
    platform.Deploy(workload.names[i], workload.models[i]);
  }
  if (kind == BalancerKind::kModelSharing) {
    // Full §5.1 K-medoids recompute (deploy-time placement is incremental
    // and order-sensitive); verify it co-locates the structural pairs.
    EXPECT_TRUE(platform.RebalanceNow("manual"));
    const auto table = platform.PlacementSnapshot();
    EXPECT_EQ(table->NodeOf(workload.names[0]), table->NodeOf(workload.names[1]));
    EXPECT_EQ(table->NodeOf(workload.names[2]), table->NodeOf(workload.names[3]));
  }
  const std::vector<float> input(8, 0.5f);
  for (int round = 0; round < kRotationRounds; ++round) {
    const double now = kRoundGap * round;
    const size_t member = static_cast<size_t>(round % 2);
    platform.Invoke(workload.names[member], input, now);       // Vision pair.
    platform.Invoke(workload.names[2 + member], input, now);   // Text pair.
  }
  return platform.Transforms() + platform.WarmStarts();
}

TEST(PlacementEndToEndTest, ModelSharingBeatsHashOnLivePlatform) {
  const PairedWorkload workload = MakePairedWorkload();
  ASSERT_EQ(workload.names.size(), 4u);
  const size_t sharing = LiveTransformPlusWarm(BalancerKind::kModelSharing, workload);
  const size_t hash = LiveTransformPlusWarm(BalancerKind::kHash, workload);
  EXPECT_GT(sharing, hash);
}

TEST(PlacementEndToEndTest, ModelSharingBeatsHashInSimulator) {
  const PairedWorkload workload = MakePairedWorkload();
  ASSERT_EQ(workload.names.size(), 4u);
  Trace trace;
  for (int round = 0; round < kRotationRounds; ++round) {
    const double now = kRoundGap * round;
    const size_t member = static_cast<size_t>(round % 2);
    trace.push_back({now, workload.names[member]});
    trace.push_back({now, workload.names[2 + member]});
  }
  SimConfig config;
  config.system = SystemType::kOptimus;
  config.num_nodes = 2;
  config.containers_per_node = 1;
  config.placement.clusters_per_node = 1;
  AnalyticCostModel costs;

  config.placement.kind = BalancerKind::kModelSharing;
  const SimResult sharing = RunSimulation(workload.models, trace, config, costs);
  config.placement.kind = BalancerKind::kHash;
  const SimResult hash = RunSimulation(workload.models, trace, config, costs);

  EXPECT_GT(sharing.CountOf(StartType::kTransform) + sharing.CountOf(StartType::kWarm),
            hash.CountOf(StartType::kTransform) + hash.CountOf(StartType::kWarm));
}

}  // namespace
}  // namespace optimus
