// Forecast-driven warming (DESIGN.md §17): forecaster classification and
// prediction, WarmingPolicy budgeting, WarmingEngine cadence, the platform's
// speculative pre-warm path with its distinct accounting bucket, and the
// simulator's virtual-time twin of the same pipeline.

#include <algorithm>
#include <cmath>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fault.h"
#include "src/core/platform.h"
#include "src/sim/simulator.h"
#include "src/warming/forecaster.h"
#include "src/warming/policy.h"
#include "src/workload/azure.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// Forecasters.

TEST(ForecasterTest, EwmaConvergesToSteadyRate) {
  EwmaForecaster forecaster(0.5);
  const DemandSeries steady(8, 4.0);
  const Forecast forecast = forecaster.Predict(steady);
  EXPECT_TRUE(forecast.predictable);
  EXPECT_NEAR(forecast.rate, 4.0, 1e-9);
}

TEST(ForecasterTest, EwmaTracksTrend) {
  EwmaForecaster forecaster(0.5);
  const DemandSeries rising = {1.0, 2.0, 4.0, 8.0};
  const Forecast forecast = forecaster.Predict(rising);
  // EWMA lags the latest sample but sits well above the series mean.
  EXPECT_GT(forecast.rate, 3.75);
  EXPECT_LT(forecast.rate, 8.0);
}

TEST(ForecasterTest, EwmaDeclinesOnEmptyHistory) {
  EwmaForecaster forecaster(0.5);
  const Forecast forecast = forecaster.Predict({});
  EXPECT_FALSE(forecast.predictable);
  EXPECT_EQ(forecast.rate, 0.0);
}

TEST(ForecasterTest, MakeForecasterRejectsUnknownKind) {
  EXPECT_THROW(MakeForecaster("oracle", 0.5), std::invalid_argument);
  EXPECT_NE(MakeForecaster("ewma", 0.5), nullptr);
  EXPECT_NE(MakeForecaster("hybrid", 0.5), nullptr);
}

// ---------------------------------------------------------------------------
// Classification.

TEST(ClassifyTest, SteadySeriesIsPeriodic) {
  const DemandSeries steady(12, 5.0);
  EXPECT_EQ(ClassifyDemand(steady), DemandClass::kPeriodic);
  const DemandStats stats = AnalyzeDemandSeries(steady);
  EXPECT_LT(stats.cv, kClassifySteadyCv);
}

TEST(ClassifyTest, SpikeTrainIsPeriodicViaAutocorrelation) {
  // Period-4 spike train: strong autocorrelation at lag 4 even though the
  // coefficient of variation is far above the steady threshold.
  DemandSeries spikes;
  for (int period = 0; period < 4; ++period) {
    spikes.push_back(8.0);
    spikes.push_back(0.0);
    spikes.push_back(0.0);
    spikes.push_back(0.0);
  }
  const DemandStats stats = AnalyzeDemandSeries(spikes);
  EXPECT_GE(stats.best_autocorr, kClassifyPeriodicAutocorr);
  EXPECT_EQ(stats.best_lag, 4u);
  EXPECT_GE(stats.cv, kClassifySteadyCv);
  EXPECT_EQ(ClassifyDemand(spikes), DemandClass::kPeriodic);
}

TEST(ClassifyTest, OnOffPhasesAreBursty) {
  // Irregularly spaced dense bursts over quiet stretches: high CV, no stable
  // period, mean above one arrival per slot.
  const DemandSeries bursts = {0.0, 0.0, 9.0, 8.0, 0.0, 0.0, 0.0, 7.0,
                               9.0, 0.0, 0.0, 0.0, 0.0, 8.0, 0.0, 6.0};
  const DemandStats stats = AnalyzeDemandSeries(bursts);
  EXPECT_GE(stats.cv, kClassifySteadyCv);
  EXPECT_LT(stats.best_autocorr, kClassifyPeriodicAutocorr);
  EXPECT_GE(stats.mean, kClassifySporadicMean);
  EXPECT_EQ(ClassifyDemand(bursts), DemandClass::kBursty);
}

TEST(ClassifyTest, RareIrregularArrivalsAreSporadic) {
  const DemandSeries rare = {0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0};
  EXPECT_EQ(ClassifyDemand(rare), DemandClass::kSporadic);
  // Too little history or too few events: sporadic by construction.
  EXPECT_EQ(ClassifyDemand({5.0, 5.0}), DemandClass::kSporadic);
  EXPECT_EQ(ClassifyDemand({1.0, 0.0, 0.0, 0.0, 1.0, 0.0}), DemandClass::kSporadic);
}

TEST(ClassifyTest, DemandClassNamesAreStable) {
  EXPECT_STREQ(DemandClassName(DemandClass::kSporadic), "sporadic");
  EXPECT_STREQ(DemandClassName(DemandClass::kPeriodic), "periodic");
  EXPECT_STREQ(DemandClassName(DemandClass::kBursty), "bursty");
}

// Bins one function's arrivals into fixed-width demand slots — the same shape
// the DemandAccumulator produces once per warming cycle.
DemandSeries BinArrivals(const Trace& trace, const std::string& function, double horizon,
                         double slot_seconds) {
  DemandSeries series(static_cast<size_t>(horizon / slot_seconds) + 1, 0.0);
  for (const auto& request : trace) {
    if (request.function == function) {
      series[static_cast<size_t>(request.arrival / slot_seconds)] += 1.0;
    }
  }
  return series;
}

TEST(ClassifyTest, GeneratorTraceClassesAreDistinguishable) {
  // The satellite regression: each forced generator class must land in the
  // matching classifier bucket when binned at the warming cadence.
  const std::vector<std::string> functions = {"f0"};
  AzureTraceOptions options;
  options.horizon_seconds = 4.0 * 3600;
  options.seed = 7;
  const double slot = 120.0;

  options.force_pattern = 0;  // Periodic timer at ~12.5 s: steady slot counts.
  const Trace periodic = GenerateAzureTrace(functions, options);
  EXPECT_EQ(ClassifyDemand(BinArrivals(periodic, "f0", options.horizon_seconds, slot)),
            DemandClass::kPeriodic);

  options.force_pattern = 1;  // On/off bursts (quiet ~15 min, dense fronts).
  const Trace bursty = GenerateAzureTrace(functions, options);
  EXPECT_EQ(ClassifyDemand(BinArrivals(bursty, "f0", options.horizon_seconds, slot)),
            DemandClass::kBursty);

  options.force_pattern = 2;  // Rare Poisson arrivals, diurnally thinned.
  options.peak_rate = 0.002;
  const Trace sporadic = GenerateAzureTrace(functions, options);
  EXPECT_EQ(ClassifyDemand(BinArrivals(sporadic, "f0", options.horizon_seconds, slot)),
            DemandClass::kSporadic);
}

// ---------------------------------------------------------------------------
// Hybrid forecaster.

TEST(HybridForecasterTest, DeclinesToPredictSporadicDemand) {
  HybridForecaster forecaster(0.5);
  const Forecast forecast =
      forecaster.Predict({0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0});
  EXPECT_FALSE(forecast.predictable);
  EXPECT_EQ(forecast.demand_class, DemandClass::kSporadic);
  EXPECT_STREQ(forecast.method, "none");
  EXPECT_EQ(forecast.confidence, 0.0);
}

TEST(HybridForecasterTest, SeasonalNaiveForecastsTheNextSpike) {
  HybridForecaster forecaster(0.5);
  // Three full periods plus a partial one ending right before the spike: the
  // value one period ago (the spike) is the next-slot forecast.
  DemandSeries spikes;
  for (int period = 0; period < 4; ++period) {
    spikes.push_back(8.0);
    spikes.push_back(0.0);
    spikes.push_back(0.0);
    spikes.push_back(0.0);
  }
  spikes.push_back(8.0);
  spikes.push_back(0.0);
  spikes.push_back(0.0);  // history[n - 4] == 0: next slot is mid-quiet...
  Forecast forecast = forecaster.Predict(spikes);
  EXPECT_TRUE(forecast.predictable);
  EXPECT_STREQ(forecast.method, "seasonal");
  EXPECT_EQ(forecast.rate, 0.0);

  spikes.push_back(0.0);  // ...and now history[n - 4] == 8: spike incoming.
  forecast = forecaster.Predict(spikes);
  EXPECT_TRUE(forecast.predictable);
  EXPECT_STREQ(forecast.method, "seasonal");
  EXPECT_EQ(forecast.rate, 8.0);
}

TEST(HybridForecasterTest, SteadyDemandForecastsAtHighConfidence) {
  HybridForecaster forecaster(0.5);
  const Forecast forecast = forecaster.Predict(DemandSeries(10, 3.0));
  EXPECT_TRUE(forecast.predictable);
  EXPECT_EQ(forecast.demand_class, DemandClass::kPeriodic);
  EXPECT_NEAR(forecast.rate, 3.0, 1e-9);
  EXPECT_GE(forecast.confidence, 0.9);
}

TEST(HybridForecasterTest, BurstyDemandTracksTheLongRunRate) {
  HybridForecaster forecaster(0.3);
  const DemandSeries bursts = {0.0, 0.0, 9.0, 8.0, 0.0, 0.0, 0.0, 7.0,
                               9.0, 0.0, 0.0, 0.0, 0.0, 8.0, 0.0, 6.0};
  const Forecast forecast = forecaster.Predict(bursts);
  EXPECT_TRUE(forecast.predictable);
  EXPECT_EQ(forecast.demand_class, DemandClass::kBursty);
  EXPECT_STREQ(forecast.method, "ewma");
  EXPECT_GT(forecast.rate, 0.0);
  // Burst timing is memoryless: the forecast must survive an off-phase
  // instead of keying to the last slot (which would predict 6.0 here and 0.0
  // two quiet slots later, right when the container expires).
  DemandSeries quiet = bursts;
  quiet.push_back(0.0);
  quiet.push_back(0.0);
  const Forecast later = forecaster.Predict(quiet);
  EXPECT_TRUE(later.predictable);
  EXPECT_GT(later.rate, 1.0);
}

// ---------------------------------------------------------------------------
// WarmingPolicy.

FunctionForecast MakePredictable(const std::string& function, double rate, double confidence) {
  FunctionForecast entry;
  entry.function = function;
  entry.forecast.predictable = true;
  entry.forecast.rate = rate;
  entry.forecast.confidence = confidence;
  return entry;
}

TEST(WarmingPolicyTest, BudgetCapsClusterAndPerNodeOrders) {
  const std::unique_ptr<WarmingPolicy> policy = MakeWarmingPolicy("predictive");
  Placement assignment;
  std::vector<FunctionForecast> forecasts;
  for (int i = 0; i < 8; ++i) {
    const std::string name = "fn" + std::to_string(i);
    assignment[name] = i % 2;
    // Distinct rates so the priority order is unambiguous.
    forecasts.push_back(MakePredictable(name, 10.0 - i, 1.0));
  }
  const PlacementTable table(1, BalancerKind::kHash, 2, assignment);
  WarmingBudget budget;
  budget.max_orders_per_cycle = 4;
  budget.max_orders_per_node = 2;
  const std::vector<WarmingOrder> orders = policy->Plan(forecasts, table, budget);
  ASSERT_LE(orders.size(), 4u);
  std::map<int, int> per_node;
  for (const WarmingOrder& order : orders) {
    ++per_node[order.node];
    EXPECT_EQ(order.node, table.NodeOrHash(order.function));
  }
  for (const auto& [node, count] : per_node) {
    EXPECT_LE(count, 2) << "node " << node;
  }
  // Highest-priority first.
  for (size_t i = 1; i < orders.size(); ++i) {
    EXPECT_GE(orders[i - 1].priority, orders[i].priority);
  }
}

TEST(WarmingPolicyTest, SkipsUnpredictableAndBelowFloorForecasts) {
  const std::unique_ptr<WarmingPolicy> policy = MakeWarmingPolicy("predictive");
  const PlacementTable table(1, BalancerKind::kHash, 2, {{"quiet", 0}, {"noisy", 1}});
  std::vector<FunctionForecast> forecasts;
  forecasts.push_back(MakePredictable("quiet", 0.1, 1.0));  // Below the rate floor.
  FunctionForecast declined;
  declined.function = "noisy";
  declined.forecast.predictable = false;
  declined.forecast.rate = 50.0;  // Informational only; must not be acted on.
  forecasts.push_back(declined);
  EXPECT_TRUE(policy->Plan(forecasts, table, WarmingBudget()).empty());
}

TEST(WarmingPolicyTest, PlanIsDeterministic) {
  const std::unique_ptr<WarmingPolicy> policy = MakeWarmingPolicy("predictive");
  Placement assignment;
  std::vector<FunctionForecast> forecasts;
  for (int i = 0; i < 6; ++i) {
    const std::string name = "fn" + std::to_string(i);
    assignment[name] = i % 3;
    forecasts.push_back(MakePredictable(name, 4.0, 0.8));  // Equal priorities.
  }
  const PlacementTable table(1, BalancerKind::kHash, 3, assignment);
  const std::vector<WarmingOrder> first = policy->Plan(forecasts, table, WarmingBudget());
  const std::vector<WarmingOrder> second = policy->Plan(forecasts, table, WarmingBudget());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].function, second[i].function);
    EXPECT_EQ(first[i].node, second[i].node);
  }
  EXPECT_THROW(MakeWarmingPolicy("psychic"), std::invalid_argument);
}

TEST(WarmingPolicyTest, OrdersFollowLiveMaskReHoming) {
  // Functions assigned to a dead node re-home over the live ring; warming a
  // dead node would be guaranteed waste, so orders must follow NodeOrHash.
  const std::unique_ptr<WarmingPolicy> policy = MakeWarmingPolicy("predictive");
  const PlacementTable table(2, BalancerKind::kHash, 2, {{"fn0", 0}, {"fn1", 0}},
                             std::vector<uint8_t>{0, 1});  // Node 0 is dead.
  const std::vector<FunctionForecast> forecasts = {MakePredictable("fn0", 5.0, 1.0),
                                                   MakePredictable("fn1", 5.0, 1.0)};
  const std::vector<WarmingOrder> orders = policy->Plan(forecasts, table, WarmingBudget());
  ASSERT_FALSE(orders.empty());
  for (const WarmingOrder& order : orders) {
    EXPECT_EQ(order.node, 1);
  }
}

// ---------------------------------------------------------------------------
// WarmingEngine cadence.

TEST(WarmingEngineTest, DueFiresExactlyOncePerInterval) {
  WarmingOptions options;
  options.enabled = true;
  options.interval = 100.0;
  WarmingEngine engine(options);
  EXPECT_FALSE(engine.Due(50.0));
  EXPECT_TRUE(engine.Due(100.0));
  EXPECT_FALSE(engine.Due(150.0));  // Same window.
  EXPECT_TRUE(engine.Due(250.0));
  EXPECT_FALSE(engine.Due(250.0));
}

TEST(WarmingEngineTest, DisabledEngineIsNeverDue) {
  WarmingOptions options;
  options.enabled = false;
  options.interval = 100.0;
  WarmingEngine engine(options);
  EXPECT_FALSE(engine.Due(1e9));
  engine.set_enabled(true);
  EXPECT_TRUE(engine.Due(1e9));
  engine.set_enabled(false);
  EXPECT_FALSE(engine.Due(2e9));
}

// ---------------------------------------------------------------------------
// Platform: the speculative pre-warm path.

class WarmingPlatformTest : public testing::Test {
 protected:
  static PlatformOptions Options(bool enabled) {
    PlatformOptions options;
    options.num_nodes = 1;
    options.containers_per_node = 2;
    options.warming.enabled = enabled;
    options.warming.interval = 0.0;  // Cycles only via explicit WarmNow().
    return options;
  }

  // Five rounds of two invokes each, spaced past the keep-alive so each round
  // starts cold; each round closes one demand slot of 2 — a steady (periodic)
  // series the hybrid forecaster predicts with high confidence.
  static double BuildSteadyDemand(OptimusPlatform* platform, const std::vector<float>& input) {
    double t = 0.0;
    for (int round = 0; round < 5; ++round) {
      t = 1000.0 * round;
      platform->Invoke("vgg", input, t);
      platform->Invoke("vgg", input, t + 1.0);
      platform->WarmNow(t + 2.0);
    }
    return t + 2.0;
  }

  AnalyticCostModel costs_;
  std::vector<float> input_ = std::vector<float>(8, 0.5f);
};

TEST_F(WarmingPlatformTest, PrewarmServesTheNextArrivalWarm) {
  OptimusPlatform platform(&costs_, Options(/*enabled=*/true));
  platform.Deploy("vgg", TinyVgg(11));
  const double t = BuildSteadyDemand(&platform, input_);

  // Next cycle fires after the keep-alive: the reactive container is gone,
  // and the forecast pre-warms a fresh one ahead of the next round.
  const size_t executed = platform.WarmNow(t + 998.0);
  EXPECT_GE(executed, 1u);
  EXPECT_GE(platform.PrewarmedContainers(), 1u);
  EXPECT_GE(platform.counters().warming_prewarms_cold, 1u);

  const InvokeResult result = platform.Invoke("vgg", input_, t + 999.0);
  EXPECT_EQ(result.start, StartType::kWarm);
  EXPECT_EQ(platform.counters().warming_hits, 1u);
  EXPECT_EQ(platform.PrewarmedContainers(), 0u);
}

TEST_F(WarmingPlatformTest, SpeculationUsesItsOwnAccountingBucket) {
  OptimusPlatform platform(&costs_, Options(/*enabled=*/true));
  platform.Deploy("vgg", TinyVgg(11));
  const double t = BuildSteadyDemand(&platform, input_);
  platform.WarmNow(t + 998.0);
  platform.Invoke("vgg", input_, t + 999.0);

  const PlatformCounters counters = platform.counters();
  // 11 successful invokes, all reactive: warm + transform + cold still
  // reconciles without any speculative contamination.
  EXPECT_EQ(counters.warm_starts + counters.transforms + counters.cold_starts, 11u);
  // Bucket conservation: every pre-warm is eventually a hit, waste, or still
  // live awaiting its first request.
  EXPECT_EQ(counters.warming_prewarms_cold + counters.warming_prewarms_transform,
            counters.warming_hits + counters.warming_waste + platform.PrewarmedContainers());
}

TEST_F(WarmingPlatformTest, UnusedPrewarmExpiresIntoWaste) {
  OptimusPlatform platform(&costs_, Options(/*enabled=*/true));
  platform.Deploy("vgg", TinyVgg(11));
  const double t = BuildSteadyDemand(&platform, input_);
  ASSERT_GE(platform.WarmNow(t + 998.0), 1u);
  ASSERT_GE(platform.PrewarmedContainers(), 1u);

  // No request ever lands; the next cycle past the keep-alive reaps the
  // speculative container and charges the waste bucket.
  platform.WarmNow(t + 998.0 + 700.0);
  EXPECT_GE(platform.counters().warming_waste, 1u);
  EXPECT_EQ(platform.counters().warming_hits, 0u);
  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.warming_prewarms_cold + counters.warming_prewarms_transform,
            counters.warming_hits + counters.warming_waste + platform.PrewarmedContainers());
}

TEST_F(WarmingPlatformTest, DisabledWarmingIsANoop) {
  OptimusPlatform platform(&costs_, Options(/*enabled=*/false));
  platform.Deploy("vgg", TinyVgg(11));
  EXPECT_FALSE(platform.WarmingEnabled());
  platform.Invoke("vgg", input_, 0.0);
  EXPECT_EQ(platform.WarmNow(1.0), 0u);
  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.warming_cycles, 0u);
  EXPECT_EQ(counters.warming_orders, 0u);
  EXPECT_EQ(platform.PrewarmedContainers(), 0u);

  // Runtime toggle: the engine exists even when construction disabled it.
  platform.SetWarmingEnabled(true);
  EXPECT_TRUE(platform.WarmingEnabled());
  EXPECT_EQ(platform.counters().warming_cycles, 0u);
  platform.WarmNow(2.0);
  EXPECT_EQ(platform.counters().warming_cycles, 1u);
}

TEST_F(WarmingPlatformTest, PrefetchFaultChargesFailuresNotTransforms) {
  OptimusPlatform platform(&costs_, Options(/*enabled=*/true));
  platform.Deploy("vgg", TinyVgg(11));
  const double t = BuildSteadyDemand(&platform, input_);

  fault::ScopedFaults faults("warming.prefetch=always");
  platform.WarmNow(t + 998.0);
  const PlatformCounters counters = platform.counters();
  EXPECT_GE(counters.warming_failures, 1u);
  EXPECT_EQ(counters.warming_failures, fault::Fires("warming.prefetch"));
  EXPECT_EQ(counters.warming_prewarms_cold, 0u);
  EXPECT_EQ(counters.warming_prewarms_transform, 0u);
  EXPECT_EQ(counters.transform_failures, 0u);  // Reactive bucket untouched.
  EXPECT_EQ(platform.PrewarmedContainers(), 0u);
}

TEST_F(WarmingPlatformTest, WarmingStatsJsonCarriesTheBucket) {
  OptimusPlatform platform(&costs_, Options(/*enabled=*/true));
  platform.Deploy("vgg", TinyVgg(11));
  BuildSteadyDemand(&platform, input_);
  const std::string json = platform.WarmingStatsJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"forecaster\":\"hybrid\""), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":5"), std::string::npos);
  EXPECT_NE(json.find("\"budget\":"), std::string::npos);
}

TEST_F(WarmingPlatformTest, ConcurrentInvokesAndWarmingCycles) {
  // TSan coverage for the background loop + invoke-path Due() triggers.
  PlatformOptions options = Options(/*enabled=*/true);
  options.warming.interval = 5.0;  // Background loop runs.
  options.containers_per_node = 4;
  OptimusPlatform platform(&costs_, options);
  platform.Deploy("vgg11", TinyVgg(11));
  platform.Deploy("vgg16", TinyVgg(16));

  std::vector<std::thread> workers;
  for (int worker = 0; worker < 3; ++worker) {
    workers.emplace_back([&platform, worker, this] {
      const std::string function = worker % 2 == 0 ? "vgg11" : "vgg16";
      for (int i = 0; i < 20; ++i) {
        platform.Invoke(function, input_, static_cast<double>(worker * 1000 + i * 7));
      }
    });
  }
  for (int i = 0; i < 4; ++i) {
    platform.WarmNow(static_cast<double>(3000 + i * 10));
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.warm_starts + counters.transforms + counters.cold_starts, 60u);
  EXPECT_EQ(counters.warming_prewarms_cold + counters.warming_prewarms_transform,
            counters.warming_hits + counters.warming_waste + platform.PrewarmedContainers());
}

// ---------------------------------------------------------------------------
// Simulator: the virtual-time twin.

class WarmingSimTest : public testing::Test {
 protected:
  WarmingSimTest() {
    models_.push_back(TinyVgg(11));
    models_.push_back(TinyVgg(16));
    models_.push_back(TinyVgg(19));
    models_.push_back(TinyResNet(18));
    for (const Model& model : models_) {
      names_.push_back(model.name());
    }
    config_.system = SystemType::kOptimus;
    config_.num_nodes = 2;
    config_.containers_per_node = 4;
  }

  Trace BurstyTrace() const {
    AzureTraceOptions options;
    options.horizon_seconds = 4.0 * 3600;
    options.seed = 11;
    options.force_pattern = 1;  // Every function bursty: the warming target.
    return GenerateAzureTrace(names_, options);
  }

  std::vector<Model> models_;
  std::vector<std::string> names_;
  SimConfig config_;
  AnalyticCostModel costs_;
};

TEST_F(WarmingSimTest, WarmingReducesColdStartsUnderBurstyTrace) {
  const Trace trace = BurstyTrace();
  ASSERT_GT(trace.size(), 50u);

  const SimResult reactive = RunSimulation(models_, trace, config_, costs_);
  SimConfig warmed_config = config_;
  warmed_config.warming.enabled = true;
  warmed_config.warming.interval = 120.0;
  const SimResult warmed = RunSimulation(models_, trace, warmed_config, costs_);

  // Reactive baseline must be untouched by the warming fields.
  EXPECT_EQ(reactive.warming_cycles, 0u);
  EXPECT_EQ(reactive.WarmingPrewarms(), 0u);

  EXPECT_GT(warmed.warming_cycles, 0u);
  EXPECT_GT(warmed.warming_hits, 0u);
  // Every request still served exactly once in both runs.
  EXPECT_EQ(warmed.records.size(), trace.size());
  const size_t cold_reactive =
      reactive.CountOf(StartType::kCold) + reactive.CountOf(StartType::kTransform);
  const size_t cold_warmed =
      warmed.CountOf(StartType::kCold) + warmed.CountOf(StartType::kTransform);
  EXPECT_LT(cold_warmed, cold_reactive);
}

TEST_F(WarmingSimTest, SimulatorBucketObeysConservation) {
  const Trace trace = BurstyTrace();
  SimConfig config = config_;
  config.warming.enabled = true;
  config.warming.interval = 120.0;
  const SimResult result = RunSimulation(models_, trace, config, costs_);
  EXPECT_EQ(result.WarmingPrewarms(),
            result.warming_hits + result.warming_waste + result.warming_unused);
  EXPECT_EQ(result.warming_lead_seconds.size(), result.warming_hits);
  for (const double lead : result.warming_lead_seconds) {
    EXPECT_GE(lead, 0.0);
  }
  // Orders either executed, were skipped, or (no faults in the sim) nothing
  // else: the order ledger reconciles.
  EXPECT_EQ(result.warming_orders, result.WarmingPrewarms() + result.warming_skipped);
}

TEST_F(WarmingSimTest, PlatformAndSimulatorAgreeOnTheSchedule) {
  // Same cadence, same engine: a 1-hour horizon at a 120 s interval runs at
  // most horizon/interval cycles in the simulator, and the live platform's
  // Due() admits exactly the same count when driven by the same clock.
  WarmingOptions options;
  options.enabled = true;
  options.interval = 120.0;
  WarmingEngine engine(options);
  size_t live_cycles = 0;
  for (double t = 0.0; t < 3600.0; t += 1.0) {
    if (engine.Due(t)) {
      ++live_cycles;
    }
  }

  const Trace trace = {{0.0, names_[0]}, {3599.0, names_[0]}};
  SimConfig config = config_;
  config.warming.enabled = true;
  config.warming.interval = 120.0;
  const SimResult result = RunSimulation(models_, trace, config, costs_);
  EXPECT_EQ(result.warming_cycles, live_cycles);
}

}  // namespace
}  // namespace optimus
