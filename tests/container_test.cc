#include "src/container/container.h"

#include <gtest/gtest.h>

namespace optimus {
namespace {

class ContainerPoolTest : public testing::Test {
 protected:
  ContainerPool pool_{/*capacity=*/3, /*idle_threshold=*/60.0, /*keep_alive=*/600.0};
};

TEST_F(ContainerPoolTest, LaunchAndFind) {
  Container* c = pool_.Launch("vgg16", 0.0, 1.5);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->function, "vgg16");
  EXPECT_EQ(c->state, ContainerState::kStarting);
  EXPECT_EQ(pool_.Find(c->id)->function, "vgg16");
  EXPECT_EQ(pool_.Find(999), nullptr);
}

TEST_F(ContainerPoolTest, CapacityEnforced) {
  pool_.Launch("a", 0.0, 0.0);
  pool_.Launch("b", 0.0, 0.0);
  pool_.Launch("c", 0.0, 0.0);
  EXPECT_FALSE(pool_.HasFreeSlot());
  EXPECT_THROW(pool_.Launch("d", 0.0, 0.0), std::runtime_error);
}

TEST_F(ContainerPoolTest, FindWarmOnlyMatchesIdleSameFunction) {
  Container* busy = pool_.Launch("vgg16", 0.0, 0.0);
  busy->state = ContainerState::kBusy;
  EXPECT_EQ(pool_.FindWarm("vgg16"), nullptr);
  busy->state = ContainerState::kIdle;
  EXPECT_EQ(pool_.FindWarm("vgg16"), busy);
  EXPECT_EQ(pool_.FindWarm("resnet50"), nullptr);
}

TEST_F(ContainerPoolTest, IdleTimerGatesTransformCandidates) {
  Container* c = pool_.Launch("vgg16", 0.0, 0.0);
  c->state = ContainerState::kIdle;
  c->last_active = 100.0;
  // Before the threshold: not a donor.
  EXPECT_TRUE(pool_.TransformCandidates("resnet50", 130.0).empty());
  // After the threshold: a donor for other functions only.
  EXPECT_EQ(pool_.TransformCandidates("resnet50", 161.0).size(), 1u);
  EXPECT_TRUE(pool_.TransformCandidates("vgg16", 161.0).empty());
}

TEST_F(ContainerPoolTest, BusyContainersAreNeverDonors) {
  Container* c = pool_.Launch("vgg16", 0.0, 0.0);
  c->state = ContainerState::kBusy;
  c->last_active = 0.0;
  EXPECT_TRUE(pool_.TransformCandidates("resnet50", 1000.0).empty());
}

TEST_F(ContainerPoolTest, KeepAliveReapsOnlyExpiredIdle) {
  Container* old_idle = pool_.Launch("a", 0.0, 0.0);
  old_idle->state = ContainerState::kIdle;
  old_idle->last_active = 0.0;
  Container* fresh_idle = pool_.Launch("b", 0.0, 0.0);
  fresh_idle->state = ContainerState::kIdle;
  fresh_idle->last_active = 500.0;
  Container* busy = pool_.Launch("c", 0.0, 0.0);
  busy->state = ContainerState::kBusy;
  busy->last_active = 0.0;

  pool_.ReapExpired(700.0);  // keep_alive = 600: only "a" expired.
  EXPECT_EQ(pool_.Size(), 2u);
  EXPECT_EQ(pool_.FindWarm("a"), nullptr);
  EXPECT_NE(pool_.FindWarm("b"), nullptr);
}

TEST_F(ContainerPoolTest, LruIdlePicksOldest) {
  Container* a = pool_.Launch("a", 0.0, 0.0);
  a->state = ContainerState::kIdle;
  a->last_active = 50.0;
  Container* b = pool_.Launch("b", 0.0, 0.0);
  b->state = ContainerState::kIdle;
  b->last_active = 10.0;
  EXPECT_EQ(pool_.LruIdle()->function, "b");
  b->state = ContainerState::kBusy;
  EXPECT_EQ(pool_.LruIdle()->function, "a");
}

TEST_F(ContainerPoolTest, MinPriorityIdlePicksCheapestToReload) {
  Container* expensive = pool_.Launch("big_model", 0.0, 0.0);
  expensive->state = ContainerState::kIdle;
  expensive->priority = 10.0;
  Container* cheap = pool_.Launch("small_model", 0.0, 0.0);
  cheap->state = ContainerState::kIdle;
  cheap->priority = 2.0;
  Container* busy = pool_.Launch("busy_model", 0.0, 0.0);
  busy->state = ContainerState::kBusy;
  busy->priority = 0.5;  // Lowest priority, but busy containers are immune.
  EXPECT_EQ(pool_.MinPriorityIdle()->function, "small_model");
}

TEST_F(ContainerPoolTest, LruIdleNullWhenAllBusy) {
  Container* a = pool_.Launch("a", 0.0, 0.0);
  a->state = ContainerState::kBusy;
  EXPECT_EQ(pool_.LruIdle(), nullptr);
}

TEST_F(ContainerPoolTest, RemoveFreesSlot) {
  const ContainerId a_id = pool_.Launch("a", 0.0, 0.0)->id;
  pool_.Launch("b", 0.0, 0.0);
  pool_.Launch("c", 0.0, 0.0);
  EXPECT_FALSE(pool_.HasFreeSlot());
  pool_.Remove(a_id);
  EXPECT_TRUE(pool_.HasFreeSlot());
  EXPECT_EQ(pool_.Size(), 2u);
}

TEST(ContainerTest, IdleSinceSemantics) {
  Container c;
  c.state = ContainerState::kIdle;
  c.last_active = 100.0;
  EXPECT_FALSE(c.IdleSince(150.0, 60.0));
  EXPECT_TRUE(c.IdleSince(160.0, 60.0));
  c.state = ContainerState::kBusy;
  EXPECT_FALSE(c.IdleSince(500.0, 60.0));
}

}  // namespace
}  // namespace optimus
