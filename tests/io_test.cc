// Tests for plan serialization (src/core/plan_io) and trace CSV IO
// (src/workload/trace_io).

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/common/thread_pool.h"
#include "src/core/executor.h"
#include "src/core/plan_cache.h"
#include "src/core/plan_io.h"
#include "src/core/planner.h"
#include "src/workload/poisson.h"
#include "src/workload/trace_io.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

bool PlansEqual(const TransformPlan& a, const TransformPlan& b) {
  if (a.source_name != b.source_name || a.dest_name != b.dest_name ||
      a.total_cost != b.total_cost || a.steps.size() != b.steps.size() ||
      a.mapping.matched != b.mapping.matched || a.mapping.reduced != b.mapping.reduced ||
      a.mapping.added != b.mapping.added) {
    return false;
  }
  for (size_t i = 0; i < a.steps.size(); ++i) {
    const MetaOp& x = a.steps[i];
    const MetaOp& y = b.steps[i];
    if (x.kind != y.kind || x.source_id != y.source_id || x.dest_id != y.dest_id ||
        x.edge != y.edge || x.edge_add != y.edge_add || x.cost != y.cost) {
      return false;
    }
  }
  return true;
}

TransformPlan SamplePlan() {
  AnalyticCostModel costs;
  return PlanTransform(TinyVgg(11), TinyVgg(16), costs, PlannerKind::kGroup);
}

TEST(PlanIoTest, RoundTrip) {
  const TransformPlan plan = SamplePlan();
  const TransformPlan restored = DeserializePlan(SerializePlan(plan));
  EXPECT_TRUE(PlansEqual(plan, restored));
}

TEST(PlanIoTest, RoundTripWithReducesAndEdges) {
  AnalyticCostModel costs;
  const TransformPlan plan =
      PlanTransform(TinyResNet(34), TinyResNet(18), costs, PlannerKind::kGroup);
  EXPECT_GT(plan.CountOf(MetaOpKind::kReduce), 0);
  const TransformPlan restored = DeserializePlan(SerializePlan(plan));
  EXPECT_TRUE(PlansEqual(plan, restored));
}

TEST(PlanIoTest, RestoredPlanIsExecutable) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  ModelInstance source = loader.Instantiate(TinyVgg(11), 1);
  const ModelInstance dest = loader.Instantiate(TinyVgg(16), 2);
  const TransformPlan plan = PlanTransform(source.model, dest.model, costs, PlannerKind::kGroup);
  const TransformPlan restored = DeserializePlan(SerializePlan(plan));
  ExecutePlan(&source, dest.model, restored);
  EXPECT_TRUE(source.model.Identical(dest.model));
}

TEST(PlanIoTest, MalformedInputsRejected) {
  EXPECT_THROW(DeserializePlan(""), std::runtime_error);
  EXPECT_THROW(DeserializePlan("nonsense line\n"), std::runtime_error);
  std::string truncated = SerializePlan(SamplePlan());
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(DeserializePlan(truncated), std::runtime_error);
}

TEST(PlanIoTest, MultiPlanStreamRoundTrip) {
  AnalyticCostModel costs;
  std::vector<TransformPlan> plans;
  plans.push_back(PlanTransform(TinyVgg(11), TinyVgg(16), costs, PlannerKind::kGroup));
  plans.push_back(PlanTransform(TinyVgg(16), TinyVgg(11), costs, PlannerKind::kGroup));
  std::stringstream stream;
  WritePlans(stream, plans);
  const std::vector<TransformPlan> restored = ReadPlans(stream);
  ASSERT_EQ(restored.size(), 2u);
  EXPECT_TRUE(PlansEqual(plans[0], restored[0]));
  EXPECT_TRUE(PlansEqual(plans[1], restored[1]));
}

TEST(PlanIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/optimus_plans.txt";
  WritePlansToFile(path, {SamplePlan()});
  const auto restored = ReadPlansFromFile(path);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_TRUE(PlansEqual(SamplePlan(), restored[0]));
  std::remove(path.c_str());
}

TEST(PlanCacheIoTest, ConcurrentlyWarmedCacheRoundTrips) {
  AnalyticCostModel costs;
  const std::vector<Model> repository = {TinyVgg(11), TinyVgg(13), TinyVgg(16), TinyResNet(18)};
  const size_t pairs = repository.size() * (repository.size() - 1);

  ThreadPool pool(4);
  PlanCache cache(&costs);
  for (const Model& model : repository) {
    cache.WarmFor(model, repository, &pool);
  }
  ASSERT_EQ(cache.Size(), pairs);

  const std::string path = testing::TempDir() + "/optimus_concurrent_plans.txt";
  cache.Save(path);

  PlanCache restored(&costs);
  restored.Load(path);
  EXPECT_EQ(restored.Size(), pairs);
  for (const Model& source : repository) {
    for (const Model& dest : repository) {
      if (source.name() == dest.name()) {
        continue;
      }
      ASSERT_TRUE(restored.Contains(source.name(), dest.name()));
      EXPECT_DOUBLE_EQ(restored.GetOrPlan(source, dest).total_cost,
                       cache.GetOrPlan(source, dest).total_cost);
    }
  }
  std::remove(path.c_str());
}

TEST(PlanCacheIoTest, LoadIntoWarmedCacheMergesWithoutDuplicateKeys) {
  AnalyticCostModel costs;
  const std::vector<Model> repository = {TinyVgg(11), TinyVgg(13), TinyVgg(16)};
  const size_t pairs = repository.size() * (repository.size() - 1);

  ThreadPool pool(2);
  PlanCache cache(&costs);
  for (const Model& model : repository) {
    cache.WarmFor(model, repository, &pool);
  }
  const std::string path = testing::TempDir() + "/optimus_merge_plans.txt";
  cache.Save(path);

  // Re-loading the cache's own plans must be a no-op merge: every key already
  // exists, so the size stays at one entry per ordered pair.
  cache.Load(path);
  EXPECT_EQ(cache.Size(), pairs);

  // Merging into a cache that holds a disjoint pair adds without clobbering.
  PlanCache merged(&costs);
  const Model resnet = TinyResNet(18);
  merged.GetOrPlan(resnet, repository[0]);
  merged.Load(path);
  EXPECT_EQ(merged.Size(), pairs + 1);
  EXPECT_TRUE(merged.Contains(resnet.name(), repository[0].name()));
  std::remove(path.c_str());
}

TEST(PlanCacheIoTest, SaveIsDeterministicAcrossWarmingStrategies) {
  AnalyticCostModel costs;
  const std::vector<Model> repository = {TinyVgg(11), TinyVgg(16), TinyResNet(18)};

  PlanCache serial(&costs);
  for (const Model& model : repository) {
    serial.WarmFor(model, repository);
  }
  ThreadPool pool(4);
  PlanCache parallel(&costs);
  for (const Model& model : repository) {
    parallel.WarmFor(model, repository, &pool);
  }

  const std::string serial_path = testing::TempDir() + "/optimus_serial_plans.txt";
  const std::string parallel_path = testing::TempDir() + "/optimus_parallel_plans.txt";
  serial.Save(serial_path);
  parallel.Save(parallel_path);
  // Save orders plans by (source, dest) key, so the two files hold the same
  // plans in the same order no matter which threads planned which pairs.
  // (Byte equality would be too strong: plans record their own wall-clock
  // planning_seconds.)
  const auto serial_plans = ReadPlansFromFile(serial_path);
  const auto parallel_plans = ReadPlansFromFile(parallel_path);
  ASSERT_EQ(serial_plans.size(), parallel_plans.size());
  for (size_t i = 0; i < serial_plans.size(); ++i) {
    EXPECT_EQ(serial_plans[i].source_name, parallel_plans[i].source_name);
    EXPECT_EQ(serial_plans[i].dest_name, parallel_plans[i].dest_name);
    EXPECT_DOUBLE_EQ(serial_plans[i].total_cost, parallel_plans[i].total_cost);
    EXPECT_EQ(serial_plans[i].steps.size(), parallel_plans[i].steps.size());
  }
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());
}

TEST(TraceIoTest, RoundTrip) {
  PoissonTraceOptions options;
  options.horizon_seconds = 5000.0;
  const Trace trace = GenerateMixedPoissonTrace({"alpha", "beta"}, options);
  std::stringstream stream;
  WriteTraceCsv(stream, trace);
  const Trace restored = ReadTraceCsv(stream);
  ASSERT_EQ(restored.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(restored[i].arrival, trace[i].arrival, 1e-6);
    EXPECT_EQ(restored[i].function, trace[i].function);
  }
}

TEST(TraceIoTest, CommentsAndBlankLinesSkipped) {
  std::stringstream stream("# header\n\n1.5,fn_a\n0.5,fn_b\n");
  const Trace trace = ReadTraceCsv(stream);
  ASSERT_EQ(trace.size(), 2u);
  // Re-sorted by arrival.
  EXPECT_EQ(trace[0].function, "fn_b");
  EXPECT_EQ(trace[1].function, "fn_a");
}

TEST(TraceIoTest, MalformedRowsRejected) {
  {
    std::stringstream stream("no_comma_here\n");
    EXPECT_THROW(ReadTraceCsv(stream), std::runtime_error);
  }
  {
    std::stringstream stream("abc,fn\n");
    EXPECT_THROW(ReadTraceCsv(stream), std::runtime_error);
  }
  {
    std::stringstream stream("1.0,\n");
    EXPECT_THROW(ReadTraceCsv(stream), std::runtime_error);
  }
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(ReadTraceCsvFile("/nonexistent/trace.csv"), std::runtime_error);
}

}  // namespace
}  // namespace optimus
