#include "src/core/executor.h"

#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/runtime/inference.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

class ExecutorTest : public testing::Test {
 protected:
  // Runs the full pipeline: load source, plan, execute, and check the
  // post-condition that the container now holds exactly the destination.
  TransformExecutionStats TransformAndCheck(const Model& source_structure,
                                            const Model& dest_structure, PlannerKind kind) {
    ModelInstance source = loader_.Instantiate(source_structure, /*weight_seed=*/101);
    const ModelInstance dest = loader_.Instantiate(dest_structure, /*weight_seed=*/202);
    const TransformPlan plan = PlanTransform(source.model, dest.model, costs_, kind);
    const TransformExecutionStats stats = ExecutePlan(&source, dest.model, plan);
    EXPECT_TRUE(source.model.Identical(dest.model))
        << source_structure.name() << " -> " << dest_structure.name();
    source.model.Validate();
    return stats;
  }

  AnalyticCostModel costs_;
  Loader loader_{&costs_};
};

TEST_F(ExecutorTest, SameStructureReplaceOnly) {
  Model b = TinyVgg(11);
  b.set_name("tiny_vgg11_b");
  const TransformExecutionStats stats = TransformAndCheck(TinyVgg(11), b, PlannerKind::kGroup);
  EXPECT_GT(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kReplace)], 0);
  EXPECT_EQ(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kAdd)], 0);
  EXPECT_EQ(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kReduce)], 0);
}

TEST_F(ExecutorTest, GrowWithinFamily) {
  const TransformExecutionStats stats =
      TransformAndCheck(TinyVgg(11), TinyVgg(16), PlannerKind::kGroup);
  EXPECT_GT(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kAdd)], 0);
}

TEST_F(ExecutorTest, ShrinkWithinFamily) {
  const TransformExecutionStats stats =
      TransformAndCheck(TinyVgg(16), TinyVgg(11), PlannerKind::kGroup);
  EXPECT_GT(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kReduce)], 0);
}

TEST_F(ExecutorTest, CrossFamilyCnn) {
  TransformAndCheck(TinyVgg(11), TinyResNet(18), PlannerKind::kGroup);
  TransformAndCheck(TinyResNet(18), TinyMobileNet(), PlannerKind::kGroup);
}

TEST_F(ExecutorTest, BertToBert) {
  const TransformExecutionStats stats =
      TransformAndCheck(TinyBert(4, 128), TinyBert(2, 64), PlannerKind::kGroup);
  EXPECT_GT(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kReshape)], 0);
  EXPECT_GT(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kReduce)], 0);
}

TEST_F(ExecutorTest, CnnToBertAndBack) {
  TransformAndCheck(TinyMobileNet(), TinyBert(2, 64), PlannerKind::kGroup);
  TransformAndCheck(TinyBert(2, 64), TinyMobileNet(), PlannerKind::kGroup);
}

TEST_F(ExecutorTest, BasicPlannerPlansAreExecutable) {
  TransformAndCheck(TinyVgg(11), TinyVgg(16), PlannerKind::kBasic);
  TransformAndCheck(TinyResNet(18), TinyVgg(11), PlannerKind::kBasic);
}

TEST_F(ExecutorTest, TransformedModelServesDestinationFunction) {
  // The decisive end-to-end property: inference outputs from the transformed
  // container equal those from a scratch-loaded destination.
  ModelInstance source = loader_.Instantiate(TinyVgg(11), 11);
  const ModelInstance dest = loader_.Instantiate(TinyVgg(16), 22);
  const TransformPlan plan = PlanTransform(source.model, dest.model, costs_, PlannerKind::kGroup);
  ExecutePlan(&source, dest.model, plan);
  const std::vector<float> input(8, 0.3f);
  EXPECT_EQ(RunInference(source, input), RunInference(dest, input));
}

TEST_F(ExecutorTest, PlanForWrongSourceThrows) {
  ModelInstance source = loader_.Instantiate(TinyMobileNet(), 1);
  const ModelInstance dest = loader_.Instantiate(TinyVgg(11), 2);
  // Plan computed against a different source model.
  const TransformPlan plan =
      PlanTransform(loader_.Instantiate(TinyVgg(16), 3).model, dest.model, costs_,
                    PlannerKind::kGroup);
  EXPECT_THROW(ExecutePlan(&source, dest.model, plan), std::runtime_error);
}

TEST_F(ExecutorTest, StatsTotalsAreConsistent) {
  ModelInstance source = loader_.Instantiate(TinyResNet(18), 1);
  const ModelInstance dest = loader_.Instantiate(TinyResNet(34), 2);
  const TransformPlan plan = PlanTransform(source.model, dest.model, costs_, PlannerKind::kGroup);
  const TransformExecutionStats stats = ExecutePlan(&source, dest.model, plan);
  double sum = 0.0;
  for (const double seconds : stats.seconds_by_kind) {
    EXPECT_GE(seconds, 0.0);
    sum += seconds;
  }
  EXPECT_NEAR(sum, stats.total_seconds, 1e-9);
}

// Property sweep: transformation correctness over a grid of model pairs and
// both production planners.
struct ExecCase {
  const char* source;
  const char* dest;
};

class ExecutorPropertyTest : public testing::TestWithParam<std::tuple<PlannerKind, ExecCase>> {};

Model BuildNamed(const std::string& name) {
  if (name == "vgg11") {
    return TinyVgg(11);
  }
  if (name == "vgg16") {
    return TinyVgg(16);
  }
  if (name == "vgg19") {
    return TinyVgg(19);
  }
  if (name == "resnet18") {
    return TinyResNet(18);
  }
  if (name == "resnet34") {
    return TinyResNet(34);
  }
  if (name == "mobilenet") {
    return TinyMobileNet();
  }
  if (name == "bert2") {
    return TinyBert(2, 64);
  }
  return TinyBert(4, 128);
}

TEST_P(ExecutorPropertyTest, TransformYieldsIdenticalModel) {
  const auto [planner, exec_case] = GetParam();
  AnalyticCostModel costs;
  Loader loader(&costs);
  ModelInstance source = loader.Instantiate(BuildNamed(exec_case.source), 7);
  const ModelInstance dest = loader.Instantiate(BuildNamed(exec_case.dest), 8);
  const TransformPlan plan = PlanTransform(source.model, dest.model, costs, planner);
  ExecutePlan(&source, dest.model, plan);
  EXPECT_TRUE(source.model.Identical(dest.model));
}

INSTANTIATE_TEST_SUITE_P(
    PairsAndPlanners, ExecutorPropertyTest,
    testing::Combine(testing::Values(PlannerKind::kBasic, PlannerKind::kGroup),
                     testing::Values(ExecCase{"vgg11", "vgg19"}, ExecCase{"vgg19", "vgg11"},
                                     ExecCase{"resnet18", "resnet34"},
                                     ExecCase{"resnet34", "vgg16"},
                                     ExecCase{"mobilenet", "resnet18"},
                                     ExecCase{"bert2", "bert4"}, ExecCase{"bert4", "bert2"},
                                     ExecCase{"vgg11", "bert2"})));

}  // namespace
}  // namespace optimus
