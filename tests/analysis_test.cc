// Tests for the static plan & graph verifier (src/analysis, DESIGN.md §10):
// plans produced by the production planners verify clean over zoo pairs, and
// hand-mutated plans — dropped steps, dropped mapping entries, corrupted edge
// steps, understated costs — are rejected with the right issue kind. Also
// covers the graph invariant checker and the plan cache's verification
// boundary (insert, WarmFor registration, Load).

#include "src/analysis/verifier.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/rng.h"
#include "src/core/plan_cache.h"
#include "src/core/plan_io.h"
#include "src/core/planner.h"
#include "src/zoo/registry.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

// --- Graph invariant checker -----------------------------------------------

TEST(GraphInvariantsTest, WellFormedModelPasses) {
  const GraphCheckResult result = CheckGraphInvariants(TinyResNet(18));
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_EQ(result.Summary(), "ok");
}

TEST(GraphInvariantsTest, DanglingEdgeDetected) {
  Model model = SmallChain("dangling", 3, 8);
  model.AddEdge(0, 99);
  const GraphCheckResult result = CheckGraphInvariants(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.issues[0].kind, GraphIssueKind::kEdgeMissingEndpoint);
  EXPECT_THROW(model.Validate(), std::runtime_error);
}

TEST(GraphInvariantsTest, SelfEdgeDetected) {
  Model model = SmallChain("selfloop", 3, 8);
  model.AddEdge(1, 1);
  const GraphCheckResult result = CheckGraphInvariants(model);
  ASSERT_FALSE(result.ok());
  bool found = false;
  for (const GraphIssue& issue : result.issues) {
    found = found || issue.kind == GraphIssueKind::kSelfEdge;
  }
  EXPECT_TRUE(found) << result.Summary();
}

TEST(GraphInvariantsTest, CycleDetected) {
  Model model = SmallChain("cyclic", 3, 8);
  model.AddEdge(3, 0);
  const GraphCheckResult result = CheckGraphInvariants(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.issues[0].kind, GraphIssueKind::kCycle);
  EXPECT_THROW(model.Validate(), std::runtime_error);
}

TEST(GraphInvariantsTest, NegativeAttributeDetected) {
  Model model = SmallChain("negattr", 3, 8);
  model.mutable_op(1).attrs.out_channels = -4;
  const GraphCheckResult result = CheckGraphInvariants(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.issues[0].kind, GraphIssueKind::kNegativeAttribute);
}

TEST(GraphInvariantsTest, WeightShapeMismatchDetected) {
  Model model = SmallChain("badweights", 3, 8);
  Rng rng(11);
  for (const OpId id : model.OpIds()) {
    Operation& op = model.mutable_op(id);
    if (OpKindHasWeights(op.kind)) {
      op.InitializeWeights(&rng);
    }
  }
  ASSERT_TRUE(CheckGraphInvariants(model).ok());
  model.mutable_op(1).weights[0] = Tensor(Shape{{2, 2}});
  const GraphCheckResult result = CheckGraphInvariants(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.issues[0].kind, GraphIssueKind::kWeightShapeMismatch);
  EXPECT_THROW(model.Validate(), std::runtime_error);
}

// --- VerifyPlan: acceptance over zoo pairs ---------------------------------

class PlanVerifierSweepTest : public testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelRegistry(RepresentativeModels());
    names_ = new std::vector<std::string>(zoo_->Names());
  }
  static void TearDownTestSuite() {
    delete zoo_;
    delete names_;
    zoo_ = nullptr;
    names_ = nullptr;
  }

  static ModelRegistry* zoo_;
  static std::vector<std::string>* names_;
};

ModelRegistry* PlanVerifierSweepTest::zoo_ = nullptr;
std::vector<std::string>* PlanVerifierSweepTest::names_ = nullptr;

TEST_P(PlanVerifierSweepTest, ProductionPlansVerify) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005u + 1);
  const auto pick = [&] {
    return (*names_)[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(names_->size()) - 1))];
  };
  const std::string from_name = pick();
  const std::string to_name = pick();
  if (from_name == to_name) {
    GTEST_SKIP();
  }
  const Model from = zoo_->Build(from_name);
  const Model to = zoo_->Build(to_name);
  AnalyticCostModel costs;
  for (const PlannerKind planner : {PlannerKind::kBasic, PlannerKind::kGroup}) {
    const TransformPlan plan = PlanTransform(from, to, costs, planner);
    const PlanVerifyResult result = VerifyPlan(from, to, plan, costs);
    EXPECT_TRUE(result.ok()) << from_name << " -> " << to_name << " ("
                             << (planner == PlannerKind::kBasic ? "basic" : "group")
                             << "):\n"
                             << result.Summary();
    EXPECT_TRUE(VerifyPlanShape(plan).ok()) << VerifyPlanShape(plan).Summary();
  }
}

INSTANTIATE_TEST_SUITE_P(RepresentativePairs, PlanVerifierSweepTest, testing::Range(0, 25));

// --- VerifyPlan: corruption rejection --------------------------------------

class PlanCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    source_ = TinyVgg(11);
    dest_ = TinyResNet(18);
    plan_ = PlanTransform(source_, dest_, costs_, PlannerKind::kBasic);
    ASSERT_TRUE(VerifyPlan(source_, dest_, plan_, costs_).ok());
  }

  // Index of the first step of `kind`, or -1.
  int FindStep(MetaOpKind kind) const {
    for (size_t i = 0; i < plan_.steps.size(); ++i) {
      if (plan_.steps[i].kind == kind) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  AnalyticCostModel costs_;
  Model source_;
  Model dest_;
  TransformPlan plan_;
};

TEST_F(PlanCorruptionTest, DroppedReplaceStepRejected) {
  const int index = FindStep(MetaOpKind::kReplace);
  ASSERT_GE(index, 0) << "expected at least one Replace step";
  TransformPlan corrupt = plan_;
  const double dropped_cost = corrupt.steps[static_cast<size_t>(index)].cost;
  corrupt.steps.erase(corrupt.steps.begin() + index);
  corrupt.total_cost -= dropped_cost;
  const PlanVerifyResult result = VerifyPlan(source_, dest_, corrupt, costs_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.Has(PlanIssueKind::kMissingStep)) << result.Summary();
}

TEST_F(PlanCorruptionTest, DroppedMappingEntryRejected) {
  TransformPlan corrupt = plan_;
  ASSERT_FALSE(corrupt.mapping.matched.empty());
  corrupt.mapping.matched.pop_back();
  const PlanVerifyResult result = VerifyPlan(source_, dest_, corrupt, costs_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.Has(PlanIssueKind::kMappingIncomplete)) << result.Summary();
}

TEST_F(PlanCorruptionTest, DanglingEdgeStepRejected) {
  const int index = FindStep(MetaOpKind::kEdge);
  ASSERT_GE(index, 0) << "expected at least one Edge step";
  TransformPlan corrupt = plan_;
  corrupt.steps[static_cast<size_t>(index)].edge.second = 999999;
  const PlanVerifyResult result = VerifyPlan(source_, dest_, corrupt, costs_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.Has(PlanIssueKind::kEdgeInvalid) ||
              result.Has(PlanIssueKind::kResultMismatch))
      << result.Summary();
}

TEST_F(PlanCorruptionTest, FlippedEdgeStepRejected) {
  const int index = FindStep(MetaOpKind::kEdge);
  ASSERT_GE(index, 0) << "expected at least one Edge step";
  TransformPlan corrupt = plan_;
  MetaOp& step = corrupt.steps[static_cast<size_t>(index)];
  std::swap(step.edge.first, step.edge.second);
  const PlanVerifyResult result = VerifyPlan(source_, dest_, corrupt, costs_);
  ASSERT_FALSE(result.ok()) << "flipped edge " << step.edge.first << "->" << step.edge.second;
}

TEST_F(PlanCorruptionTest, UnderstatedTotalCostRejected) {
  TransformPlan corrupt = plan_;
  corrupt.total_cost *= 0.5;
  const PlanVerifyResult result = VerifyPlan(source_, dest_, corrupt, costs_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.Has(PlanIssueKind::kCostUnderstated)) << result.Summary();
}

TEST_F(PlanCorruptionTest, UnderstatedStepCostRejected) {
  int index = -1;
  for (size_t i = 0; i < plan_.steps.size(); ++i) {
    if (plan_.steps[i].cost > 1e-6) {
      index = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(index, 0) << "expected a step with non-trivial cost";
  TransformPlan corrupt = plan_;
  MetaOp& step = corrupt.steps[static_cast<size_t>(index)];
  corrupt.total_cost -= step.cost * 0.9;
  step.cost *= 0.1;
  const PlanVerifyResult result = VerifyPlan(source_, dest_, corrupt, costs_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.Has(PlanIssueKind::kCostUnderstated)) << result.Summary();
}

TEST_F(PlanCorruptionTest, MalformedSourceGraphRejected) {
  Model corrupt_source = source_;
  corrupt_source.AddEdge(0, 999);
  const PlanVerifyResult result = VerifyPlan(corrupt_source, dest_, plan_, costs_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.Has(PlanIssueKind::kGraphInvariant)) << result.Summary();
}

// --- VerifyPlanShape (model-free) ------------------------------------------

TEST_F(PlanCorruptionTest, ShapeRejectsEmptyEndpointName) {
  TransformPlan corrupt = plan_;
  corrupt.dest_name.clear();
  EXPECT_FALSE(VerifyPlanShape(corrupt).ok());
}

TEST_F(PlanCorruptionTest, ShapeRejectsNegativeCost) {
  TransformPlan corrupt = plan_;
  ASSERT_FALSE(corrupt.steps.empty());
  corrupt.total_cost -= corrupt.steps[0].cost + 1.0;
  corrupt.steps[0].cost = -1.0;
  EXPECT_FALSE(VerifyPlanShape(corrupt).ok());
}

TEST_F(PlanCorruptionTest, ShapeRejectsTotalStepSumMismatch) {
  TransformPlan corrupt = plan_;
  corrupt.total_cost += 123.0;
  EXPECT_FALSE(VerifyPlanShape(corrupt).ok());
}

TEST_F(PlanCorruptionTest, ShapeRejectsDuplicateMappingEntry) {
  TransformPlan corrupt = plan_;
  ASSERT_FALSE(corrupt.mapping.matched.empty());
  corrupt.mapping.reduced.push_back(corrupt.mapping.matched[0].first);
  EXPECT_FALSE(VerifyPlanShape(corrupt).ok());
}

// --- PlanCache verification boundary ---------------------------------------

TEST(PlanCacheVerificationTest, VerifiedInsertAcceptsProductionPlans) {
  AnalyticCostModel costs;
  PlanCache cache(&costs, PlannerKind::kGroup);
  cache.set_verification(true);
  const Model from = TinyVgg(11);
  const Model to = TinyResNet(18);
  const TransformPlan& plan = cache.GetOrPlan(from, to);
  EXPECT_EQ(plan.source_name, from.name());
  EXPECT_TRUE(cache.Contains(from.name(), to.name()));
}

TEST(PlanCacheVerificationTest, MalformedSourceLatchesFailure) {
  AnalyticCostModel costs;
  PlanCache cache(&costs, PlannerKind::kGroup);
  cache.set_verification(true);
  Model from = SmallChain("corrupt_src", 3, 8);
  from.AddEdge(3, 0);  // Cycle: planning or verification must fail.
  const Model to = SmallChain("clean_dst", 5, 16);
  EXPECT_THROW(cache.GetOrPlan(from, to), std::runtime_error);
  // The failure is latched: later requesters get the error, not a hang or a
  // corrupt plan, and the pair never counts as published.
  EXPECT_THROW(cache.GetOrPlan(from, to), std::runtime_error);
  EXPECT_FALSE(cache.Contains(from.name(), to.name()));
}

TEST(PlanCacheVerificationTest, WarmForRejectsMalformedRegistration) {
  AnalyticCostModel costs;
  PlanCache cache(&costs, PlannerKind::kGroup);
  cache.set_verification(true);
  Model model = SmallChain("bad_registration", 3, 8);
  model.AddEdge(0, 77);  // Dangling edge.
  const std::vector<Model> repository = {SmallChain("other", 5, 16)};
  EXPECT_THROW(cache.WarmFor(model, repository), std::runtime_error);
  EXPECT_EQ(cache.Size(), 0u);
}

TEST(PlanCacheVerificationTest, LoadRejectsCorruptPlanFile) {
  AnalyticCostModel costs;
  const Model from = SmallChain("load_src", 3, 8);
  const Model to = SmallChain("load_dst", 5, 16);
  TransformPlan plan = PlanTransform(from, to, costs, PlannerKind::kGroup);
  plan.total_cost *= 0.25;  // Understates the step sum.
  const std::string path = testing::TempDir() + "/optimus_corrupt_plans.txt";
  WritePlansToFile(path, {plan});
  PlanCache cache(&costs, PlannerKind::kGroup);
  EXPECT_THROW(cache.Load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PlanCacheVerificationTest, LoadAcceptsWellFormedPlanFile) {
  AnalyticCostModel costs;
  const Model from = SmallChain("ok_src", 3, 8);
  const Model to = SmallChain("ok_dst", 5, 16);
  const TransformPlan plan = PlanTransform(from, to, costs, PlannerKind::kGroup);
  const std::string path = testing::TempDir() + "/optimus_ok_plans.txt";
  WritePlansToFile(path, {plan});
  PlanCache cache(&costs, PlannerKind::kGroup);
  cache.Load(path);
  EXPECT_TRUE(cache.Contains(from.name(), to.name()));
  std::remove(path.c_str());
}

// --- Verification gating ----------------------------------------------------

TEST(PlanCacheVerificationTest, VerificationTogglesPerCache) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  cache.set_verification(false);
  EXPECT_FALSE(cache.verification());
  Model from = SmallChain("unverified_src", 3, 8);
  from.AddEdge(0, 99);  // Would fail registration with verification on.
  const std::vector<Model> repository;
  cache.WarmFor(from, repository);  // No repository, no planning: must not throw.
  cache.set_verification(true);
  EXPECT_THROW(cache.WarmFor(from, repository), std::runtime_error);
}

}  // namespace
}  // namespace optimus
