// Planning sweep over the full Imgclsmob-style zoo (structure-only models):
// for random pairs drawn from the 389-model catalog, plans must be feasible,
// positive, consistent, and safeguard-total. This exercises the planner
// against the full structural diversity of the zoo without materializing
// weights.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/planner.h"
#include "src/core/transformer.h"
#include "src/zoo/registry.h"

namespace optimus {
namespace {

class ZooPlanningSweepTest : public testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    zoo_ = new ModelRegistry(ImgclsmobZoo());
    names_ = new std::vector<std::string>(zoo_->Names());
  }
  static void TearDownTestSuite() {
    delete zoo_;
    delete names_;
    zoo_ = nullptr;
    names_ = nullptr;
  }

  static ModelRegistry* zoo_;
  static std::vector<std::string>* names_;
};

ModelRegistry* ZooPlanningSweepTest::zoo_ = nullptr;
std::vector<std::string>* ZooPlanningSweepTest::names_ = nullptr;

TEST_P(ZooPlanningSweepTest, PlansAreFeasibleAndSafeguarded) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 3);
  const std::string& from_name =
      (*names_)[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(names_->size()) - 1))];
  const std::string& to_name =
      (*names_)[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(names_->size()) - 1))];
  if (from_name == to_name) {
    GTEST_SKIP();
  }
  const Model from = zoo_->Build(from_name);
  const Model to = zoo_->Build(to_name);

  AnalyticCostModel costs;
  const TransformPlan plan = PlanTransform(from, to, costs, PlannerKind::kGroup);

  // Feasibility: the mapping covers both op sets exactly once.
  EXPECT_EQ(plan.mapping.matched.size() + plan.mapping.reduced.size(), from.NumOps())
      << from_name << " -> " << to_name;
  EXPECT_EQ(plan.mapping.matched.size() + plan.mapping.added.size(), to.NumOps());
  // Matched pairs preserve the op kind.
  for (const auto& [src, dst] : plan.mapping.matched) {
    EXPECT_EQ(from.op(src).kind, to.op(dst).kind);
  }
  // Cost consistency.
  EXPECT_GT(plan.total_cost, 0.0);
  double step_sum = 0.0;
  for (const MetaOp& step : plan.steps) {
    step_sum += step.cost;
  }
  EXPECT_NEAR(step_sum, plan.total_cost, 1e-9);
  // Safeguard totality.
  Transformer transformer(&costs);
  const TransformDecision decision = transformer.Decide(from, to);
  EXPECT_LE(decision.ChosenCost(), decision.scratch_cost + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomZooPairs, ZooPlanningSweepTest, testing::Range(0, 30));

}  // namespace
}  // namespace optimus
