// Stress tests for the concurrent control path: the ThreadPool, the sharded
// PlanCache with its planning-in-flight latches, OptimusPlatform under
// parallel Invoke()/Deploy(), and the HTTP gateway's worker pool. CI runs
// this suite under TSan, which is what turns these from smoke tests into an
// enforceable thread-safety claim.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/plan_cache.h"
#include "src/core/platform.h"
#include "src/gateway/service.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

constexpr int kThreads = 8;

// --- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) {
    future.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsTaskValues) {
  ThreadPool pool(2);
  auto square = pool.Submit([](int x) { return x * x; }, 7);
  EXPECT_EQ(square.get(), 49);
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto failing = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

// --- PlanCache ----------------------------------------------------------------

TEST(ConcurrencyPlanCacheTest, RacingThreadsPlanEachPairExactlyOnce) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  const Model vgg11 = TinyVgg(11);
  const Model vgg16 = TinyVgg(16);

  std::vector<const TransformPlan*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { seen[static_cast<size_t>(t)] = &cache.GetOrPlan(vgg11, vgg16); });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  // One planner, everyone else latched onto the in-flight entry.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<size_t>(kThreads - 1));
  EXPECT_EQ(cache.Size(), 1u);
  for (const TransformPlan* plan : seen) {
    EXPECT_EQ(plan, seen[0]);  // Stable reference to the single cached plan.
  }
}

TEST(ConcurrencyPlanCacheTest, DistinctPairsPlanIndependently) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  const std::vector<Model> models = {TinyVgg(11), TinyVgg(13), TinyVgg(16), TinyResNet(18)};

  std::vector<std::thread> threads;
  for (size_t i = 0; i < models.size(); ++i) {
    for (size_t j = 0; j < models.size(); ++j) {
      if (i == j) {
        continue;
      }
      threads.emplace_back([&, i, j] { cache.GetOrPlan(models[i], models[j]); });
    }
  }
  for (auto& thread : threads) {
    thread.join();
  }

  const size_t pairs = models.size() * (models.size() - 1);
  EXPECT_EQ(cache.Size(), pairs);
  EXPECT_EQ(cache.misses(), pairs);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ConcurrencyPlanCacheTest, ParallelWarmMatchesSerialContents) {
  AnalyticCostModel costs;
  const std::vector<Model> repository = {TinyVgg(11), TinyVgg(13), TinyVgg(16),
                                         TinyResNet(18), TinyResNet(34)};

  PlanCache serial(&costs);
  for (const Model& model : repository) {
    serial.WarmFor(model, repository);
  }

  ThreadPool pool(4);
  PlanCache parallel(&costs);
  for (const Model& model : repository) {
    parallel.WarmFor(model, repository, &pool);
  }

  EXPECT_EQ(parallel.Size(), serial.Size());
  EXPECT_EQ(parallel.misses(), repository.size() * (repository.size() - 1));
  for (const Model& source : repository) {
    for (const Model& dest : repository) {
      if (source.name() == dest.name()) {
        continue;
      }
      ASSERT_TRUE(parallel.Contains(source.name(), dest.name()));
      EXPECT_DOUBLE_EQ(parallel.GetOrPlan(source, dest).total_cost,
                       serial.GetOrPlan(source, dest).total_cost);
    }
  }
}

// Regression: Save() used to copy entry->plan with no lock held, racing
// Load()'s in-place overwrite of published plans — a guarded-state violation
// the GUARDED_BY migration surfaced. Save now copies each plan under its
// entry latch; this stress fails under TSan against the old code.
TEST(ConcurrencyPlanCacheTest, SaveAndLoadRunConcurrently) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  const std::vector<Model> models = {TinyVgg(11), TinyVgg(13), TinyResNet(18)};
  for (const Model& source : models) {
    for (const Model& dest : models) {
      if (source.name() != dest.name()) {
        cache.GetOrPlan(source, dest);
      }
    }
  }
  // Two distinct files so the file I/O itself never races: Load re-reads a
  // fixed snapshot (overwriting the cache's published plans in place) while
  // Save concurrently copies those same plans out under the entry latches.
  const std::string snapshot = testing::TempDir() + "/optimus_race_snapshot.plans";
  const std::string out = testing::TempDir() + "/optimus_race_out.plans";
  cache.Save(snapshot);

  std::atomic<bool> stop{false};
  std::thread loader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.Load(snapshot);
    }
  });
  for (int i = 0; i < 50; ++i) {
    cache.Save(out);
  }
  stop.store(true, std::memory_order_relaxed);
  loader.join();

  const size_t pairs = models.size() * (models.size() - 1);
  EXPECT_EQ(cache.Size(), pairs);
  PlanCache restored(&costs);
  restored.Load(out);
  EXPECT_EQ(restored.Size(), pairs);
  std::remove(snapshot.c_str());
  std::remove(out.c_str());
}

// Regression: the plan/execution retry budgets were plain ints written by
// set_*_budget() while GetOrPlan/Quarantined read them concurrently — a data
// race surfaced by the migration; they are atomics now.
TEST(ConcurrencyPlanCacheTest, BudgetTuningDuringTraffic) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  const Model vgg11 = TinyVgg(11);
  const Model vgg16 = TinyVgg(16);

  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    int budget = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      cache.set_plan_retry_budget(1 + (budget % 4));
      cache.set_execution_retry_budget(1 + (budget % 3));
      ++budget;
    }
  });
  std::vector<std::thread> traffic;
  for (int t = 0; t < 4; ++t) {
    traffic.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        cache.GetOrPlan(vgg11, vgg16);
        cache.ReportExecutionFailure("ghost_src", "ghost_dst");
        cache.Quarantined("ghost_src", "ghost_dst");
      }
    });
  }
  for (auto& thread : traffic) {
    thread.join();
  }
  stop.store(true, std::memory_order_relaxed);
  tuner.join();

  EXPECT_TRUE(cache.Contains(vgg11.name(), vgg16.name()));
  EXPECT_EQ(cache.ExecutionFailures(), 800u);
}

// --- OptimusPlatform ----------------------------------------------------------

PlatformOptions StressOptions() {
  PlatformOptions options;
  options.num_nodes = 2;
  options.containers_per_node = 2;
  options.warm_threads = 4;
  return options;
}

TEST(ConcurrencyPlatformTest, CounterConservationUnderParallelInvoke) {
  AnalyticCostModel costs;
  OptimusPlatform platform(&costs, StressOptions());
  const std::vector<std::string> functions = {"vgg11", "vgg13", "vgg16", "resnet18"};
  platform.Deploy("vgg11", TinyVgg(11));
  platform.Deploy("vgg13", TinyVgg(13));
  platform.Deploy("vgg16", TinyVgg(16));
  platform.Deploy("resnet18", TinyResNet(18));

  const std::vector<float> input(8, 0.5f);
  constexpr int kRounds = 3;
  constexpr int kInvokesPerThread = 4;
  size_t total = 0;

  // Rounds share one virtual timestamp so concurrent invocations never move
  // the clock backwards; advancing 120s between rounds crosses the idle
  // threshold and exercises the transformation path on full nodes.
  for (int round = 0; round < kRounds; ++round) {
    const double now = 120.0 * round;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kInvokesPerThread; ++i) {
          const std::string& function = functions[static_cast<size_t>(t + i) % functions.size()];
          const InvokeResult result = platform.Invoke(function, input, now);
          ASSERT_FALSE(result.output.empty());
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    total += static_cast<size_t>(kThreads) * kInvokesPerThread;
  }

  // Conservation: every invocation was exactly one of warm/transform/cold.
  EXPECT_EQ(platform.WarmStarts() + platform.Transforms() + platform.ColdStarts(), total);
  // The cache never holds more than one plan per ordered function pair.
  const size_t n = platform.NumFunctions();
  EXPECT_LE(platform.plan_cache().Size(), n * n);
  EXPECT_LE(platform.NumLiveContainers(),
            static_cast<size_t>(StressOptions().num_nodes * StressOptions().containers_per_node));
}

TEST(ConcurrencyPlatformTest, ParallelDeploysWarmEveryPairOnce) {
  AnalyticCostModel costs;
  PlatformOptions options = StressOptions();
  OptimusPlatform platform(&costs, options);

  const std::vector<Model> models = {TinyVgg(11), TinyVgg(13), TinyVgg(16),
                                     TinyVgg(19),  TinyResNet(18), TinyResNet(34)};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < models.size(); ++i) {
    threads.emplace_back([&, i] { platform.Deploy("fn_" + std::to_string(i), models[i]); });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  // Every ordered pair planned exactly once, regardless of deploy interleaving:
  // whichever function registered later warmed against the earlier one.
  const size_t n = models.size();
  EXPECT_EQ(platform.NumFunctions(), n);
  EXPECT_EQ(platform.plan_cache().Size(), n * (n - 1));
  EXPECT_EQ(platform.plan_cache().misses(), n * (n - 1));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) {
        EXPECT_TRUE(platform.plan_cache().Contains("fn_" + std::to_string(i),
                                                   "fn_" + std::to_string(j)));
      }
    }
  }
}

TEST(ConcurrencyPlatformTest, DeployRaceOnOneNameAdmitsExactlyOne) {
  AnalyticCostModel costs;
  OptimusPlatform platform(&costs, StressOptions());
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      try {
        platform.Deploy("contested", TinyVgg(11));
      } catch (const std::invalid_argument&) {
        rejected.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(platform.NumFunctions(), 1u);
  EXPECT_EQ(rejected.load(), 3);
}

TEST(ConcurrencyPlatformTest, InvokeDuringDeployServesBothFunctions) {
  AnalyticCostModel costs;
  OptimusPlatform platform(&costs, StressOptions());
  platform.Deploy("resident", TinyVgg(11));
  const std::vector<float> input(8, 0.5f);

  std::thread deployer([&] { platform.Deploy("incoming", TinyVgg(16)); });
  std::atomic<size_t> served{0};
  std::thread invoker([&] {
    for (int i = 0; i < 8; ++i) {
      served.fetch_add(platform.Invoke("resident", input, 0.0).output.empty() ? 0 : 1);
    }
  });
  deployer.join();
  invoker.join();

  EXPECT_EQ(served.load(), 8u);
  EXPECT_FALSE(platform.Invoke("incoming", input, 1.0).output.empty());
  EXPECT_EQ(platform.WarmStarts() + platform.Transforms() + platform.ColdStarts(), 9u);
}

// --- HTTP gateway -------------------------------------------------------------

TEST(ConcurrencyGatewayTest, ParallelRequestsAreAllServed) {
  AnalyticCostModel costs;
  PlatformOptions options = StressOptions();
  OptimusHttpService service(&costs, options, [] { return 0.0; });
  service.platform().Deploy("vgg11", TinyVgg(11));
  service.platform().Deploy("vgg16", TinyVgg(16));
  service.Start(0, 4);

  constexpr int kRequestsPerThread = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = (t % 2 == 0) ? "vgg11" : "vgg16";
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const HttpResponse response =
            HttpFetch(service.port(), "POST", "/invoke?name=" + name, "0.5,0.5,0.5");
        if (response.status == 200 && response.body.find("output=") != std::string::npos) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  service.Stop();

  const int total = kThreads * kRequestsPerThread;
  EXPECT_EQ(ok.load(), total);
  EXPECT_EQ(service.platform().WarmStarts() + service.platform().Transforms() +
                service.platform().ColdStarts(),
            static_cast<size_t>(total));
}

}  // namespace
}  // namespace optimus
