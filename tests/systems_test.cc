#include "src/baselines/systems.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace optimus {
namespace {

class SystemsTest : public testing::Test {
 protected:
  SystemsTest() {
    repository_.emplace("tiny_vgg11", TinyVgg(11));
    repository_.emplace("tiny_vgg16", TinyVgg(16));
    repository_.emplace("tiny_vgg19", TinyVgg(19));
    repository_.emplace("bert", TinyBert(2, 64));
    for (const auto& [name, model] : repository_) {
      repository_ptrs_.emplace(name, &model);
    }
    context_.repository = &repository_ptrs_;
    context_.costs = &costs_;
    context_.profile = SystemProfile::Cpu();
  }

  StartupRequest RequestFor(const std::string& function) {
    StartupRequest request;
    request.dest = &repository_.at(function);
    return request;
  }

  Container MakeIdleContainer(const std::string& function, ContainerId id) {
    Container container;
    container.id = id;
    container.function = function;
    container.state = ContainerState::kIdle;
    return container;
  }

  AnalyticCostModel costs_;
  std::map<std::string, Model> repository_;
  std::map<std::string, const Model*> repository_ptrs_;
  PolicyContext context_;
};

TEST_F(SystemsTest, NamesAreStable) {
  EXPECT_STREQ(SystemTypeName(SystemType::kOpenWhisk), "OpenWhisk");
  EXPECT_STREQ(SystemTypeName(SystemType::kPagurus), "Pagurus");
  EXPECT_STREQ(SystemTypeName(SystemType::kTetris), "Tetris");
  EXPECT_STREQ(SystemTypeName(SystemType::kOptimus), "Optimus");
  EXPECT_STREQ(StartTypeName(StartType::kWarm), "Warm");
  EXPECT_STREQ(StartTypeName(StartType::kTransform), "Transform");
  EXPECT_STREQ(StartTypeName(StartType::kCold), "Cold");
}

TEST_F(SystemsTest, OpenWhiskAlwaysColdStarts) {
  auto policy = MakeStartupPolicy(SystemType::kOpenWhisk, context_);
  Container donor = MakeIdleContainer("tiny_vgg16", 1);
  StartupRequest request = RequestFor("tiny_vgg19");
  request.donors = {&donor};
  const StartupResult result = policy->Acquire(request);
  EXPECT_EQ(result.type, StartType::kCold);
  EXPECT_EQ(result.donor, nullptr);
  EXPECT_DOUBLE_EQ(result.init_seconds, context_.profile.InitCost());
  EXPECT_NEAR(result.load_seconds, costs_.ScratchLoadCost(repository_.at("tiny_vgg19")), 1e-9);
}

TEST_F(SystemsTest, PagurusRepurposesDonorButReloadsModel) {
  auto policy = MakeStartupPolicy(SystemType::kPagurus, context_);
  Container donor = MakeIdleContainer("tiny_vgg16", 1);
  StartupRequest request = RequestFor("tiny_vgg19");
  request.donors = {&donor};
  const StartupResult result = policy->Acquire(request);
  EXPECT_EQ(result.type, StartType::kTransform);
  EXPECT_EQ(result.donor, &donor);
  // Saves sandbox+runtime init...
  EXPECT_LT(result.init_seconds, context_.profile.InitCost());
  // ...but still pays the full model load (the paper's core critique).
  EXPECT_NEAR(result.load_seconds, costs_.ScratchLoadCost(repository_.at("tiny_vgg19")), 1e-9);
}

TEST_F(SystemsTest, PagurusColdStartsWithoutDonor) {
  auto policy = MakeStartupPolicy(SystemType::kPagurus, context_);
  const StartupResult result = policy->Acquire(RequestFor("tiny_vgg19"));
  EXPECT_EQ(result.type, StartType::kCold);
  EXPECT_DOUBLE_EQ(result.init_seconds, context_.profile.InitCost());
}

TEST_F(SystemsTest, TetrisSharesOnlyWithSameFunctionResident) {
  auto policy = MakeStartupPolicy(SystemType::kTetris, context_);
  // Same function resident (busy container): everything maps.
  StartupRequest shared = RequestFor("tiny_vgg19");
  shared.resident_functions = {"tiny_vgg19", "tiny_vgg16"};
  const StartupResult shared_result = policy->Acquire(shared);
  EXPECT_EQ(shared_result.type, StartType::kTransform);
  // Different functions only: nothing identical, full load.
  StartupRequest unshared = RequestFor("tiny_vgg19");
  unshared.resident_functions = {"tiny_vgg16", "bert"};
  const StartupResult unshared_result = policy->Acquire(unshared);
  EXPECT_EQ(unshared_result.type, StartType::kCold);
  EXPECT_GT(unshared_result.load_seconds, shared_result.load_seconds * 5);
}

TEST_F(SystemsTest, TetrisSharesRuntimeWhenNodeWarm) {
  auto policy = MakeStartupPolicy(SystemType::kTetris, context_);
  StartupRequest warm_node = RequestFor("tiny_vgg19");
  warm_node.resident_functions = {"bert"};
  StartupRequest cold_node = RequestFor("tiny_vgg19");
  EXPECT_LT(policy->Acquire(warm_node).init_seconds, policy->Acquire(cold_node).init_seconds);
}

TEST_F(SystemsTest, OptimusTransformsFromBestDonor) {
  auto policy = MakeStartupPolicy(SystemType::kOptimus, context_);
  Container far_donor = MakeIdleContainer("bert", 1);
  Container near_donor = MakeIdleContainer("tiny_vgg16", 2);
  StartupRequest request = RequestFor("tiny_vgg19");
  request.donors = {&far_donor, &near_donor};
  const StartupResult result = policy->Acquire(request);
  EXPECT_EQ(result.type, StartType::kTransform);
  EXPECT_EQ(result.donor, &near_donor);  // Structurally closer donor wins.
  EXPECT_DOUBLE_EQ(result.init_seconds, 0.0);
  EXPECT_LT(result.load_seconds, costs_.ScratchLoadCost(repository_.at("tiny_vgg19")));
}

TEST_F(SystemsTest, OptimusSafeguardFallsBackToScratchInDonor) {
  // Make a destination so small that transforming a big model into it costs
  // more than loading it from scratch.
  Model trivial("trivial", "test");
  const OpId in = trivial.AddOp(OpKind::kInput);
  const OpId out = trivial.AddOp(OpKind::kOutput);
  trivial.AddEdge(in, out);
  repository_.emplace("trivial", trivial);

  auto policy = MakeStartupPolicy(SystemType::kOptimus, context_);
  Container donor = MakeIdleContainer("tiny_vgg19", 1);
  StartupRequest request = RequestFor("trivial");
  request.donors = {&donor};
  const StartupResult result = policy->Acquire(request);
  // The donor container is still reused (no init), but the model loads from
  // scratch — counted as a cold model path.
  EXPECT_EQ(result.type, StartType::kCold);
  EXPECT_EQ(result.donor, &donor);
  EXPECT_DOUBLE_EQ(result.init_seconds, 0.0);
  EXPECT_NEAR(result.load_seconds, costs_.ScratchLoadCost(trivial), 1e-9);
}

TEST_F(SystemsTest, OptimusColdStartsWithoutDonors) {
  auto policy = MakeStartupPolicy(SystemType::kOptimus, context_);
  const StartupResult result = policy->Acquire(RequestFor("tiny_vgg19"));
  EXPECT_EQ(result.type, StartType::kCold);
  EXPECT_EQ(result.donor, nullptr);
  EXPECT_DOUBLE_EQ(result.init_seconds, context_.profile.InitCost());
}

TEST_F(SystemsTest, OptimusBeatsOtherPoliciesWithSimilarDonor) {
  Container donor = MakeIdleContainer("tiny_vgg16", 1);
  double latency[4] = {};
  for (const SystemType type : {SystemType::kOpenWhisk, SystemType::kPagurus,
                                SystemType::kTetris, SystemType::kOptimus}) {
    auto policy = MakeStartupPolicy(type, context_);
    StartupRequest request = RequestFor("tiny_vgg19");
    request.donors = {&donor};
    request.resident_functions = {"tiny_vgg16"};
    const StartupResult result = policy->Acquire(request);
    latency[static_cast<size_t>(type)] = result.init_seconds + result.load_seconds;
  }
  EXPECT_LT(latency[3], latency[1]);  // Optimus < Pagurus.
  EXPECT_LT(latency[1], latency[0]);  // Pagurus < OpenWhisk.
  EXPECT_LT(latency[3], latency[2]);  // Optimus < Tetris (no identical ops).
}

TEST_F(SystemsTest, GpuProfileRaisesColdStartCost) {
  PolicyContext gpu_context = context_;
  gpu_context.profile = SystemProfile::Gpu();
  auto cpu_policy = MakeStartupPolicy(SystemType::kOpenWhisk, context_);
  auto gpu_policy = MakeStartupPolicy(SystemType::kOpenWhisk, gpu_context);
  const StartupResult cpu = cpu_policy->Acquire(RequestFor("tiny_vgg19"));
  const StartupResult gpu = gpu_policy->Acquire(RequestFor("tiny_vgg19"));
  EXPECT_GT(gpu.init_seconds, cpu.init_seconds);
  EXPECT_GT(gpu.load_seconds, cpu.load_seconds);
}

}  // namespace
}  // namespace optimus
