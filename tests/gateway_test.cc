// Tests for the HTTP gateway: request parsing, route dispatch (in process),
// and full client-server round trips over loopback sockets.

#include "src/gateway/service.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/common/rng.h"
#include "src/graph/serialization.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

TEST(HttpParseTest, SimpleGet) {
  HttpRequest request;
  ASSERT_TRUE(ParseHttpRequest("GET /stats HTTP/1.1\r\nHost: x\r\n\r\n", &request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/stats");
  EXPECT_TRUE(request.query.empty());
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpParseTest, QueryParameters) {
  HttpRequest request;
  ASSERT_TRUE(
      ParseHttpRequest("POST /invoke?name=vgg16&mode=fast HTTP/1.1\r\n\r\n", &request));
  EXPECT_EQ(request.path, "/invoke");
  EXPECT_EQ(request.query.at("name"), "vgg16");
  EXPECT_EQ(request.query.at("mode"), "fast");
}

TEST(HttpParseTest, BodyViaContentLength) {
  HttpRequest request;
  const std::string raw =
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello-extra-ignored";
  ASSERT_TRUE(ParseHttpRequest(raw, &request));
  EXPECT_EQ(request.body, "hello");
}

TEST(HttpParseTest, FuzzRandomBuffersNeverCrash) {
  // The parser faces raw network bytes; random garbage must be rejected (or
  // parsed) without crashing.
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t size = static_cast<size_t>(rng.UniformInt(0, 256));
    std::string raw;
    raw.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      raw.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    // Half the trials include a header terminator to reach deeper code.
    if (rng.Bernoulli(0.5)) {
      raw += "\r\n\r\n";
    }
    HttpRequest request;
    try {
      ParseHttpRequest(raw, &request);
    } catch (const std::exception&) {
      // Malformed numeric headers may throw; that is acceptable rejection.
    }
  }
}

TEST(HttpParseTest, IncompleteRequestsReturnFalse) {
  HttpRequest request;
  EXPECT_FALSE(ParseHttpRequest("", &request));
  EXPECT_FALSE(ParseHttpRequest("GET /x HTTP/1.1\r\n", &request));  // No blank line.
  // Body shorter than Content-Length: wait for more bytes.
  EXPECT_FALSE(ParseHttpRequest("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", &request));
}

class GatewayServiceTest : public testing::Test {
 protected:
  GatewayServiceTest()
      : service_(&costs_, Options(), [this] { return virtual_time_; }) {}

  static PlatformOptions Options() {
    PlatformOptions options;
    options.num_nodes = 1;
    options.containers_per_node = 2;
    return options;
  }

  HttpResponse Post(const std::string& target, const std::string& body) {
    HttpRequest request;
    request.method = "POST";
    const size_t question = target.find('?');
    request.path = target.substr(0, question);
    if (question != std::string::npos) {
      const std::string query = target.substr(question + 1);
      const size_t equals = query.find('=');
      request.query[query.substr(0, equals)] = query.substr(equals + 1);
    }
    request.body = body;
    return service_.Handle(request);
  }

  HttpResponse Get(const std::string& path) {
    HttpRequest request;
    request.method = "GET";
    request.path = path;
    return service_.Handle(request);
  }

  std::string ModelBody(const Model& model) {
    const ModelFile file = SerializeModel(model);
    return std::string(file.begin(), file.end());
  }

  AnalyticCostModel costs_;
  double virtual_time_ = 0.0;
  OptimusHttpService service_;
};

TEST_F(GatewayServiceTest, DeployAndInvoke) {
  EXPECT_EQ(Post("/deploy?name=vgg11", ModelBody(TinyVgg(11))).status, 200);
  const HttpResponse cold = Post("/invoke?name=vgg11", "0.5,0.5,0.5");
  EXPECT_EQ(cold.status, 200);
  EXPECT_NE(cold.body.find("start=Cold"), std::string::npos);
  EXPECT_NE(cold.body.find("output="), std::string::npos);

  virtual_time_ = 5.0;
  const HttpResponse warm = Post("/invoke?name=vgg11", "0.5,0.5,0.5");
  EXPECT_NE(warm.body.find("start=Warm"), std::string::npos);
}

TEST_F(GatewayServiceTest, TransformReportedWithDonor) {
  Post("/deploy?name=vgg11", ModelBody(TinyVgg(11)));
  Post("/deploy?name=vgg16", ModelBody(TinyVgg(16)));
  Post("/deploy?name=vgg19", ModelBody(TinyVgg(19)));
  Post("/invoke?name=vgg11", "0.5");
  virtual_time_ = 1.0;
  Post("/invoke?name=vgg16", "0.5");
  virtual_time_ = 120.0;
  const HttpResponse response = Post("/invoke?name=vgg19", "0.5");
  EXPECT_NE(response.body.find("start=Transform"), std::string::npos);
  EXPECT_NE(response.body.find("donor="), std::string::npos);
}

TEST_F(GatewayServiceTest, ErrorPaths) {
  EXPECT_EQ(Post("/deploy?name=", "junk").status, 400);
  EXPECT_EQ(Post("/deploy?name=bad", "not a model file").status, 400);
  EXPECT_EQ(Post("/invoke?name=ghost", "0.5").status, 404);
  Post("/deploy?name=vgg11", ModelBody(TinyVgg(11)));
  EXPECT_EQ(Post("/deploy?name=vgg11", ModelBody(TinyVgg(11))).status, 409);
  EXPECT_EQ(Get("/nope").status, 404);
}

TEST_F(GatewayServiceTest, StatsReflectActivity) {
  Post("/deploy?name=vgg11", ModelBody(TinyVgg(11)));
  Post("/invoke?name=vgg11", "0.5");
  virtual_time_ = 2.0;
  Post("/invoke?name=vgg11", "0.5");
  const HttpResponse stats = Get("/stats");
  EXPECT_NE(stats.body.find("functions=1"), std::string::npos);
  EXPECT_NE(stats.body.find("warm=1"), std::string::npos);
  EXPECT_NE(stats.body.find("cold=1"), std::string::npos);
}

TEST_F(GatewayServiceTest, DemandRouteDumpsForecasterInput) {
  Post("/deploy?name=vgg11", ModelBody(TinyVgg(11)));
  // No harvest yet: the history is empty (slots=0).
  const HttpResponse empty = Get("/demand");
  EXPECT_EQ(empty.status, 200);
  EXPECT_NE(empty.body.find("\"slots\":0"), std::string::npos);

  Post("/invoke?name=vgg11", "0.5");
  virtual_time_ = 1.0;
  Post("/invoke?name=vgg11", "0.5");
  EXPECT_EQ(Post("/warming/enable", "").status, 200);
  EXPECT_EQ(Post("/warming/run", "").status, 200);  // Harvests one demand slot.
  const HttpResponse demand = Get("/demand");
  EXPECT_EQ(demand.status, 200);
  EXPECT_NE(demand.body.find("\"slots\":1"), std::string::npos);
  // The slot holds both invokes — exactly the series the forecaster saw.
  EXPECT_NE(demand.body.find("\"vgg11\":[2]"), std::string::npos);
}

TEST_F(GatewayServiceTest, WarmingRoutesToggleAndRun) {
  Post("/deploy?name=vgg11", ModelBody(TinyVgg(11)));
  const HttpResponse state = Get("/warming");
  EXPECT_EQ(state.status, 200);
  EXPECT_NE(state.body.find("\"enabled\":false"), std::string::npos);

  EXPECT_NE(Post("/warming/enable", "").body.find("\"enabled\":true"), std::string::npos);
  const HttpResponse run = Post("/warming/run", "");
  EXPECT_EQ(run.status, 200);
  EXPECT_NE(run.body.find("\"executed\":"), std::string::npos);
  const HttpResponse stats = Get("/stats");
  EXPECT_NE(stats.body.find("warming_enabled=1"), std::string::npos);
  EXPECT_NE(stats.body.find("warming_cycles=1"), std::string::npos);
  EXPECT_NE(Post("/warming/disable", "").body.find("\"enabled\":false"), std::string::npos);
  EXPECT_EQ(Post("/warming/hibernate", "").status, 404);
}

TEST_F(GatewayServiceTest, RebalanceDryRunPreviewsWithoutSwapping) {
  Post("/deploy?name=vgg11", ModelBody(TinyVgg(11)));
  Post("/deploy?name=vgg16", ModelBody(TinyVgg(16)));
  const uint64_t version = service_.platform().PlacementVersion();
  const HttpResponse dry = Post("/rebalance?dry_run=1", "");
  EXPECT_EQ(dry.status, 200);
  EXPECT_NE(dry.body.find("\"dry_run\":true"), std::string::npos);
  EXPECT_NE(dry.body.find("\"would_move\":"), std::string::npos);
  EXPECT_NE(dry.body.find("\"unchanged\":"), std::string::npos);
  // The serving table did not move.
  EXPECT_EQ(service_.platform().PlacementVersion(), version);

  const HttpResponse real = Post("/rebalance", "");
  EXPECT_NE(real.body.find("\"swapped\":true"), std::string::npos);
  EXPECT_EQ(service_.platform().PlacementVersion(), version + 1);
}

TEST_F(GatewayServiceTest, ConcurrentInvokesCoalesceIntoBatches) {
  Post("/deploy?name=vgg11", ModelBody(TinyVgg(11)));
  const HttpResponse reference = Post("/invoke?name=vgg11", "0.5,0.5,0.5");  // Warm it.
  ASSERT_EQ(reference.status, 200);

  // Coalescing needs genuinely overlapping requests, so fire rounds of
  // concurrent invokes until the platform records a warm batch. One round
  // almost always suffices; the retry bound only guards against a scheduler
  // that serializes every thread.
  telemetry::Counter& warm_batches =
      service_.platform().metrics().GetCounter("optimus_warm_batches_total");
  virtual_time_ = 5.0;
  for (int round = 0; round < 50 && warm_batches.Value() == 0; ++round) {
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<HttpResponse> responses(kThreads);
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [this, i, &responses] { responses[static_cast<size_t>(i)] = Post("/invoke?name=vgg11", "0.5,0.5,0.5"); });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    for (const HttpResponse& response : responses) {
      ASSERT_EQ(response.status, 200);
      // Batched dispatch must not change results: same warm start, same output.
      EXPECT_NE(response.body.find("start=Warm"), std::string::npos);
      EXPECT_EQ(response.body.substr(response.body.find("output=")),
                reference.body.substr(reference.body.find("output=")));
    }
  }
  EXPECT_GT(warm_batches.Value(), 0u);
}

TEST(GatewayBatchingTest, BatchSizeOneDisablesBatching) {
  AnalyticCostModel costs;
  PlatformOptions options;
  options.containers_per_node = 2;
  GatewayOptions gateway;
  gateway.max_batch_size = 1;
  double virtual_time = 0.0;
  OptimusHttpService service(&costs, options, gateway, [&] { return virtual_time; });

  const ModelFile file = SerializeModel(TinyVgg(11));
  HttpRequest deploy;
  deploy.method = "POST";
  deploy.path = "/deploy";
  deploy.query["name"] = "vgg11";
  deploy.body = std::string(file.begin(), file.end());
  ASSERT_EQ(service.Handle(deploy).status, 200);

  HttpRequest invoke;
  invoke.method = "POST";
  invoke.path = "/invoke";
  invoke.query["name"] = "vgg11";
  invoke.body = "0.5,0.5";
  for (int i = 0; i < 3; ++i) {
    virtual_time = static_cast<double>(i);
    EXPECT_EQ(service.Handle(invoke).status, 200);
  }
  EXPECT_EQ(service.platform().WarmStarts(), 2u);
  // The per-request TryInvoke path never touches the batch dispatcher.
  EXPECT_EQ(service.platform().metrics().GetCounter("optimus_warm_batches_total").Value(), 0u);
}

TEST(GatewaySocketTest, EndToEndOverLoopback) {
  AnalyticCostModel costs;
  PlatformOptions options;
  options.containers_per_node = 2;
  OptimusHttpService service(&costs, options);
  service.Start(/*port=*/0);
  ASSERT_GT(service.port(), 0);

  const ModelFile file = SerializeModel(TinyMobileNet());
  const HttpResponse deploy =
      HttpFetch(service.port(), "POST", "/deploy?name=mobilenet",
                std::string(file.begin(), file.end()));
  EXPECT_EQ(deploy.status, 200);

  const HttpResponse invoke =
      HttpFetch(service.port(), "POST", "/invoke?name=mobilenet", "0.4,0.4,0.4,0.4");
  EXPECT_EQ(invoke.status, 200);
  EXPECT_NE(invoke.body.find("start=Cold"), std::string::npos);

  const HttpResponse stats = HttpFetch(service.port(), "GET", "/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("cold=1"), std::string::npos);

  service.Stop();
  EXPECT_THROW(HttpFetch(service.port(), "GET", "/stats"), std::runtime_error);
}

TEST(HttpParseTest, MalformedContentLengthThrows) {
  HttpRequest request;
  EXPECT_THROW(
      ParseHttpRequest("POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n", &request),
      std::runtime_error);
  EXPECT_THROW(ParseHttpRequest(
                   "POST /x HTTP/1.1\r\nContent-Length: 99999999999999\r\n\r\n", &request),
               std::runtime_error);
}

TEST(GatewaySocketTest, StartStopCycles) {
  AnalyticCostModel costs;
  PlatformOptions options;
  for (int cycle = 0; cycle < 3; ++cycle) {
    OptimusHttpService service(&costs, options);
    service.Start(0);
    EXPECT_GT(service.port(), 0);
    const HttpResponse response = HttpFetch(service.port(), "GET", "/functions");
    EXPECT_EQ(response.status, 200);
    service.Stop();
    service.Stop();  // Idempotent.
  }
}

TEST(GatewaySocketTest, DoubleStartThrows) {
  AnalyticCostModel costs;
  PlatformOptions options;
  OptimusHttpService service(&costs, options);
  service.Start(0);
  EXPECT_THROW(service.Start(0), std::runtime_error);
  service.Stop();
}

TEST(GatewaySocketTest, MultipleSequentialClients) {
  AnalyticCostModel costs;
  PlatformOptions options;
  OptimusHttpService service(&costs, options);
  service.Start(0);
  const ModelFile file = SerializeModel(TinyVgg(11));
  HttpFetch(service.port(), "POST", "/deploy?name=vgg11",
            std::string(file.begin(), file.end()));
  for (int i = 0; i < 5; ++i) {
    const HttpResponse response =
        HttpFetch(service.port(), "POST", "/invoke?name=vgg11", "0.5,0.5");
    EXPECT_EQ(response.status, 200);
  }
  const HttpResponse stats = HttpFetch(service.port(), "GET", "/stats");
  EXPECT_NE(stats.body.find("warm=4"), std::string::npos);
  service.Stop();
}

}  // namespace
}  // namespace optimus
