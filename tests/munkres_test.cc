#include "src/core/munkres.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/common/rng.h"

namespace optimus {
namespace {

double BruteForceBest(const std::vector<std::vector<double>>& cost) {
  const size_t k = cost.size();
  std::vector<int> permutation(k);
  std::iota(permutation.begin(), permutation.end(), 0);
  double best = 1e300;
  do {
    double total = 0.0;
    for (size_t i = 0; i < k; ++i) {
      total += cost[i][static_cast<size_t>(permutation[i])];
    }
    best = std::min(best, total);
  } while (std::next_permutation(permutation.begin(), permutation.end()));
  return best;
}

TEST(MunkresTest, TrivialOneByOne) {
  const AssignmentResult result = SolveAssignment({{3.5}});
  EXPECT_EQ(result.assignment, std::vector<int>{0});
  EXPECT_DOUBLE_EQ(result.total_cost, 3.5);
}

TEST(MunkresTest, KnownTwoByTwo) {
  // Diagonal is 1+1=2; anti-diagonal is 10+10=20.
  const AssignmentResult result = SolveAssignment({{1.0, 10.0}, {10.0, 1.0}});
  EXPECT_DOUBLE_EQ(result.total_cost, 2.0);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 1);
}

TEST(MunkresTest, KnownThreeByThree) {
  const std::vector<std::vector<double>> cost = {
      {4.0, 1.0, 3.0},
      {2.0, 0.0, 5.0},
      {3.0, 2.0, 2.0},
  };
  const AssignmentResult result = SolveAssignment(cost);
  EXPECT_DOUBLE_EQ(result.total_cost, 5.0);  // (0,1)+(1,0)+(2,2)=1+2+2.
}

TEST(MunkresTest, RejectsNonSquare) {
  EXPECT_THROW(SolveAssignment({{1.0, 2.0}}), std::invalid_argument);
}

TEST(MunkresTest, EmptyMatrix) {
  const AssignmentResult result = SolveAssignment({});
  EXPECT_TRUE(result.assignment.empty());
  EXPECT_EQ(result.total_cost, 0.0);
}

TEST(MunkresTest, AssignmentIsPermutation) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t k = static_cast<size_t>(rng.UniformInt(2, 12));
    std::vector<std::vector<double>> cost(k, std::vector<double>(k));
    for (auto& row : cost) {
      for (auto& value : row) {
        value = rng.Uniform(0.0, 100.0);
      }
    }
    const AssignmentResult result = SolveAssignment(cost);
    std::vector<int> sorted = result.assignment;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(sorted[i], static_cast<int>(i));
    }
  }
}

// Property: Munkres matches exhaustive search on random small matrices.
class MunkresOptimalityTest : public testing::TestWithParam<int> {};

TEST_P(MunkresOptimalityTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t k = static_cast<size_t>(rng.UniformInt(2, 7));
  std::vector<std::vector<double>> cost(k, std::vector<double>(k));
  for (auto& row : cost) {
    for (auto& value : row) {
      // Include large "forbidden-like" entries occasionally.
      value = rng.Bernoulli(0.15) ? 1e9 : rng.Uniform(0.0, 50.0);
    }
  }
  const AssignmentResult result = SolveAssignment(cost);
  EXPECT_NEAR(result.total_cost, BruteForceBest(cost), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, MunkresOptimalityTest, testing::Range(0, 40));

}  // namespace
}  // namespace optimus
