// Tests for the deterministic fault-injection framework (src/common/fault)
// and the failure-hardened invoke/transform path it exercises (DESIGN.md §11):
// trigger semantics, the typed-error taxonomy at the platform boundary,
// transactional transformation with scratch fallback, the plan-cache retry
// budgets and execution quarantine, and the gateway's shed/retry/deadline
// behaviour.

#include "src/common/fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/plan_cache.h"
#include "src/core/platform.h"
#include "src/gateway/service.h"
#include "src/runtime/inference.h"
#include "src/runtime/loader.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// Spec grammar and trigger semantics.
// ---------------------------------------------------------------------------

TEST(FaultSpecTest, ParsesTheDocumentedGrammar) {
  const std::vector<fault::FaultSpec> specs =
      fault::ParseFaultSpecs("executor.step=prob:0.05@42;loader.load=at:3;x=once;y=nth:4;z=always");
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].point, "executor.step");
  EXPECT_EQ(specs[0].kind, fault::TriggerKind::kProbability);
  EXPECT_DOUBLE_EQ(specs[0].probability, 0.05);
  EXPECT_EQ(specs[0].seed, 42u);
  EXPECT_EQ(specs[1].point, "loader.load");
  EXPECT_EQ(specs[1].kind, fault::TriggerKind::kAt);
  EXPECT_EQ(specs[1].n, 3u);
  EXPECT_EQ(specs[2].kind, fault::TriggerKind::kAt);
  EXPECT_EQ(specs[2].n, 1u);  // "once" is sugar for at:1.
  EXPECT_EQ(specs[3].kind, fault::TriggerKind::kEveryNth);
  EXPECT_EQ(specs[3].n, 4u);
  EXPECT_EQ(specs[4].kind, fault::TriggerKind::kAlways);
}

TEST(FaultSpecTest, RejectsMalformedEntries) {
  EXPECT_THROW(fault::ParseFaultSpecs("noequals"), std::invalid_argument);
  EXPECT_THROW(fault::ParseFaultSpecs("=once"), std::invalid_argument);
  EXPECT_THROW(fault::ParseFaultSpecs("x=bogus:1"), std::invalid_argument);
  EXPECT_THROW(fault::ParseFaultSpecs("x=prob:2.0"), std::invalid_argument);
  EXPECT_THROW(fault::ParseFaultSpecs("x=prob:abc"), std::invalid_argument);
  EXPECT_THROW(fault::ParseFaultSpecs("x=nth:0"), std::invalid_argument);
  EXPECT_THROW(fault::ParseFaultSpecs("x=at:0"), std::invalid_argument);
}

TEST(FaultTriggerTest, AtFiresExactlyOnTheKthHit) {
  fault::ScopedFaults faults("p=at:3");
  EXPECT_FALSE(fault::Triggered("p"));
  EXPECT_FALSE(fault::Triggered("p"));
  EXPECT_TRUE(fault::Triggered("p"));
  EXPECT_FALSE(fault::Triggered("p"));
  EXPECT_EQ(fault::Hits("p"), 4u);
  EXPECT_EQ(fault::Fires("p"), 1u);
}

TEST(FaultTriggerTest, NthFiresOnEveryNthHit) {
  fault::ScopedFaults faults("p=nth:2");
  std::vector<bool> decisions;
  for (int i = 0; i < 6; ++i) {
    decisions.push_back(fault::Triggered("p"));
  }
  EXPECT_EQ(decisions, (std::vector<bool>{false, true, false, true, false, true}));
  EXPECT_EQ(fault::Fires("p"), 3u);
}

TEST(FaultTriggerTest, AlwaysAndOnce) {
  fault::ScopedFaults faults("a=always;o=once");
  EXPECT_TRUE(fault::Triggered("a"));
  EXPECT_TRUE(fault::Triggered("a"));
  EXPECT_TRUE(fault::Triggered("o"));
  EXPECT_FALSE(fault::Triggered("o"));
}

TEST(FaultTriggerTest, ProbabilityIsSeededAndDeterministic) {
  constexpr int kDraws = 200;
  std::vector<bool> first;
  {
    fault::ScopedFaults faults("p=prob:0.5@7");
    for (int i = 0; i < kDraws; ++i) {
      first.push_back(fault::Triggered("p"));
    }
  }
  std::vector<bool> second;
  {
    fault::ScopedFaults faults("p=prob:0.5@7");
    for (int i = 0; i < kDraws; ++i) {
      second.push_back(fault::Triggered("p"));
    }
  }
  EXPECT_EQ(first, second);  // Same seed, same hit sequence -> same decisions.
  const int fires = static_cast<int>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, kDraws / 4);  // Sanity: roughly half fire.
  EXPECT_LT(fires, 3 * kDraws / 4);
}

TEST(FaultTriggerTest, DisabledRegistryIsInert) {
  fault::Disarm();
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::Triggered("executor.step"));
  EXPECT_NO_THROW(fault::MaybeInject("executor.step"));
  EXPECT_EQ(fault::Hits("executor.step"), 0u);  // Unknown points count nothing.
}

TEST(FaultTriggerTest, MaybeInjectThrowsTypedErrorNamingThePoint) {
  fault::ScopedFaults faults("loader.load=always");
  try {
    fault::MaybeInject("loader.load");
    FAIL() << "expected FaultInjectedError";
  } catch (const fault::FaultInjectedError& error) {
    EXPECT_EQ(error.point(), "loader.load");
  }
}

TEST(FaultTriggerTest, FireCountsSnapshotCoversAllArmedPoints) {
  fault::ScopedFaults faults("a=always;b=at:100");
  fault::Triggered("a");
  fault::Triggered("a");
  fault::Triggered("b");
  const std::map<std::string, uint64_t> counts = fault::FireCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts.at("a"), 2u);
  EXPECT_EQ(counts.at("b"), 0u);
}

// ---------------------------------------------------------------------------
// Loader fault points.
// ---------------------------------------------------------------------------

TEST(LoaderFaultTest, DeserializeFaultSurfacesFromLoadFromFile) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const ModelFile file = SerializeModel(TinyMobileNet());
  ASSERT_TRUE(loader.LoadFromFile(file).Loaded());  // Clean path works.
  fault::ScopedFaults faults("loader.deserialize=always");
  EXPECT_THROW(loader.LoadFromFile(file), fault::FaultInjectedError);
}

// ---------------------------------------------------------------------------
// Platform-level failure semantics.
// ---------------------------------------------------------------------------

class PlatformFaultTest : public testing::Test {
 protected:
  static PlatformOptions Options(int containers_per_node) {
    PlatformOptions options;
    options.num_nodes = 1;
    options.containers_per_node = containers_per_node;
    return options;
  }

  // Output of `function` on a clean, fault-free platform (scratch cold load).
  std::vector<float> ReferenceOutput(const std::string& function, const Model& model) {
    AnalyticCostModel costs;
    OptimusPlatform reference(&costs, Options(1));
    reference.Deploy(function, model);
    return reference.Invoke(function, input_, 0.0).output;
  }

  AnalyticCostModel costs_;
  std::vector<float> input_ = std::vector<float>(8, 0.5f);
};

TEST_F(PlatformFaultTest, ScratchLoadFaultIsTypedUnavailable) {
  OptimusPlatform platform(&costs_, Options(2));
  platform.Deploy("vgg", TinyVgg(11));
  fault::ScopedFaults faults("loader.load=always");
  InvokeResult result;
  const Status status = platform.TryInvoke("vgg", input_, 0.0, &result);
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(status.code()));
  try {
    platform.Invoke("vgg", input_, 1.0);
    FAIL() << "expected OptimusError";
  } catch (const OptimusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kUnavailable);
  }
  EXPECT_EQ(platform.counters().failed_invokes, 2u);
  EXPECT_EQ(platform.NumLiveContainers(), 0u);  // No half-built containers.
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

TEST_F(PlatformFaultTest, MidPlanFaultDestroysDonorAndFallsBackToScratch) {
  OptimusPlatform platform(&costs_, Options(2));
  platform.Deploy("vgg11", TinyVgg(11));
  platform.Deploy("vgg16", TinyVgg(16));
  platform.Deploy("vgg19", TinyVgg(19));
  platform.Invoke("vgg11", input_, 0.0);
  platform.Invoke("vgg16", input_, 1.0);

  fault::ScopedFaults faults("executor.step=once");
  const InvokeResult result = platform.Invoke("vgg19", input_, 120.0);

  // The request succeeded via the scratch fallback, not a transform.
  EXPECT_EQ(result.start, StartType::kCold);
  EXPECT_TRUE(result.transform_fallback);
  EXPECT_EQ(result.output, ReferenceOutput("vgg19", TinyVgg(19)));

  // Exactly one injected fault, charged as exactly one transform failure; the
  // poisoned donor was destroyed and replaced by the fallback container.
  EXPECT_EQ(fault::Fires("executor.step"), 1u);
  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.transform_failures, 1u);
  EXPECT_EQ(counters.transform_fallbacks, 1u);
  EXPECT_EQ(counters.transforms, 0u);
  EXPECT_EQ(counters.failed_invokes, 0u);
  EXPECT_EQ(platform.NumLiveContainers(), 2u);
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
  EXPECT_EQ(platform.plan_cache().ExecutionFailures(), 1u);
  EXPECT_EQ(platform.plan_cache().QuarantinedPairs(), 0u);  // Budget is 2.
}

TEST_F(PlatformFaultTest, DonorMismatchFaultTakesTheSameFallback) {
  OptimusPlatform platform(&costs_, Options(2));
  platform.Deploy("vgg11", TinyVgg(11));
  platform.Deploy("vgg16", TinyVgg(16));
  platform.Deploy("vgg19", TinyVgg(19));
  platform.Invoke("vgg11", input_, 0.0);
  platform.Invoke("vgg16", input_, 1.0);

  fault::ScopedFaults faults("transform.donor=once");
  const InvokeResult result = platform.Invoke("vgg19", input_, 120.0);
  EXPECT_EQ(result.start, StartType::kCold);
  EXPECT_TRUE(result.transform_fallback);
  EXPECT_EQ(result.output, ReferenceOutput("vgg19", TinyVgg(19)));
  EXPECT_EQ(fault::Fires("transform.donor"), 1u);
  EXPECT_EQ(platform.counters().transform_failures, 1u);
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

TEST_F(PlatformFaultTest, RepeatedExecutionFailuresQuarantineThePair) {
  OptimusPlatform platform(&costs_, Options(1));
  platform.plan_cache().set_execution_retry_budget(1);
  platform.Deploy("a", TinyVgg(11));
  platform.Deploy("b", TinyVgg(16));
  platform.Invoke("a", input_, 0.0);  // Cold; the node's only slot.

  fault::ScopedFaults faults("executor.step=once");
  // Transform a->b aborts mid-plan: with a budget of one failure the pair is
  // quarantined immediately.
  const InvokeResult failed = platform.Invoke("b", input_, 120.0);
  EXPECT_EQ(failed.start, StartType::kCold);
  EXPECT_TRUE(failed.transform_fallback);
  EXPECT_TRUE(platform.plan_cache().Quarantined("a", "b"));
  EXPECT_EQ(platform.plan_cache().QuarantinedPairs(), 1u);

  // The reverse pair b->a is unaffected (the one-shot fault is spent).
  const InvokeResult back = platform.Invoke("a", input_, 240.0);
  EXPECT_EQ(back.output, ReferenceOutput("a", TinyVgg(11)));

  // a->b again: the quarantine routes the request straight to the safeguard
  // (scratch load into the donor container) without touching the executor.
  const uint64_t fires_before = fault::Fires("executor.step");
  const InvokeResult routed = platform.Invoke("b", input_, 360.0);
  EXPECT_EQ(routed.start, StartType::kCold);
  EXPECT_FALSE(routed.transform_fallback);
  EXPECT_EQ(routed.donor_function, "a");
  EXPECT_EQ(routed.output, ReferenceOutput("b", TinyVgg(16)));
  EXPECT_EQ(fault::Fires("executor.step"), fires_before);
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

// The crash-consistency sweep: abort a real zoo transformation after every
// step index in turn and require, each time, that the poisoned container is
// discarded and the scratch fallback's output is bit-identical to a clean
// cold start.
TEST_F(PlatformFaultTest, CrashConsistencyAtEveryStepIndex) {
  const std::vector<float> reference = ReferenceOutput("b", TinyVgg(16));

  // Count the executor fault-point evaluations of a clean a->b transform.
  uint64_t num_steps = 0;
  {
    OptimusPlatform platform(&costs_, Options(1));
    platform.Deploy("a", TinyVgg(11));
    platform.Deploy("b", TinyVgg(16));
    platform.Invoke("a", input_, 0.0);
    fault::ScopedFaults faults("executor.step=at:1000000000");  // Never fires.
    const InvokeResult clean = platform.Invoke("b", input_, 120.0);
    ASSERT_EQ(clean.start, StartType::kTransform);
    ASSERT_EQ(clean.output, reference);
    num_steps = fault::Hits("executor.step");
  }
  ASSERT_GT(num_steps, 2u);

  for (uint64_t k = 1; k <= num_steps; ++k) {
    SCOPED_TRACE("aborting at executor step " + std::to_string(k));
    OptimusPlatform platform(&costs_, Options(1));
    platform.Deploy("a", TinyVgg(11));
    platform.Deploy("b", TinyVgg(16));
    platform.Invoke("a", input_, 0.0);

    fault::ScopedFaults faults("executor.step=at:" + std::to_string(k));
    const InvokeResult result = platform.Invoke("b", input_, 120.0);
    EXPECT_EQ(fault::Fires("executor.step"), 1u);
    EXPECT_EQ(result.start, StartType::kCold);
    EXPECT_TRUE(result.transform_fallback);
    EXPECT_EQ(result.output, reference);
    EXPECT_EQ(platform.counters().transform_failures, 1u);
    EXPECT_EQ(platform.NumLiveContainers(), 1u);
    EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
  }
}

// ---------------------------------------------------------------------------
// Plan-cache retry budget.
// ---------------------------------------------------------------------------

TEST(PlanCacheFaultTest, PlanningFaultIsRetriedOnTheNextRequest) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  const Model a = SmallChain("a", 3, 8);
  const Model b = SmallChain("b", 3, 16);

  fault::ScopedFaults faults("cache.plan=once");
  EXPECT_THROW(cache.GetOrPlan(a, b), fault::FaultInjectedError);
  EXPECT_FALSE(cache.Contains("a", "b"));
  EXPECT_NO_THROW(cache.GetOrPlan(a, b));  // Transient fault: retry re-plans.
  EXPECT_TRUE(cache.Contains("a", "b"));
  EXPECT_EQ(cache.misses(), 2u);  // Both attempts count as misses.
}

TEST(PlanCacheFaultTest, PlanRetryBudgetMakesTheFailurePermanent) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  cache.set_plan_retry_budget(2);
  const Model a = SmallChain("a", 3, 8);
  const Model b = SmallChain("b", 3, 16);

  fault::ScopedFaults faults("cache.plan=always");
  EXPECT_THROW(cache.GetOrPlan(a, b), fault::FaultInjectedError);
  EXPECT_THROW(cache.GetOrPlan(a, b), fault::FaultInjectedError);
  EXPECT_EQ(cache.misses(), 2u);
  // Budget exhausted: the latched error is rethrown without a new attempt.
  EXPECT_THROW(cache.GetOrPlan(a, b), std::runtime_error);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(fault::Hits("cache.plan"), 2u);
}

TEST(PlanCacheFaultTest, VerificationFaultIsAlsoRetryable) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  cache.set_verification(true);
  const Model a = SmallChain("a", 3, 8);
  const Model b = SmallChain("b", 3, 16);

  fault::ScopedFaults faults("cache.verify=once");
  EXPECT_THROW(cache.GetOrPlan(a, b), fault::FaultInjectedError);
  EXPECT_NO_THROW(cache.GetOrPlan(a, b));
  EXPECT_TRUE(cache.Contains("a", "b"));
}

// ---------------------------------------------------------------------------
// Gateway hardening: JSON taxonomy, shedding, retries, deadlines.
// ---------------------------------------------------------------------------

class GatewayFaultTest : public testing::Test {
 protected:
  static HttpRequest Request(const std::string& method, const std::string& path,
                             std::map<std::string, std::string> query = {},
                             std::string body = "") {
    HttpRequest request;
    request.method = method;
    request.path = path;
    request.query = std::move(query);
    request.body = std::move(body);
    return request;
  }

  static PlatformOptions Options() {
    PlatformOptions options;
    options.num_nodes = 1;
    options.containers_per_node = 2;
    return options;
  }

  AnalyticCostModel costs_;
  std::string input_csv_ = "0.5,0.5,0.5,0.5";
};

TEST_F(GatewayFaultTest, ErrorsCarryTheJsonTaxonomy) {
  OptimusHttpService service(&costs_, Options());
  const HttpResponse unknown_fn =
      service.Handle(Request("POST", "/invoke", {{"name", "nope"}}, input_csv_));
  EXPECT_EQ(unknown_fn.status, 404);
  EXPECT_NE(unknown_fn.body.find("\"code\":\"NOT_FOUND\""), std::string::npos);
  EXPECT_NE(unknown_fn.body.find("\"http\":404"), std::string::npos);

  EXPECT_EQ(service.Handle(Request("POST", "/invoke", {}, input_csv_)).status, 400);
  EXPECT_EQ(service
                .Handle(Request("POST", "/invoke", {{"name", "x"}, {"deadline", "soon"}},
                                input_csv_))
                .status,
            400);
  const HttpResponse no_route = service.Handle(Request("GET", "/bogus"));
  EXPECT_EQ(no_route.status, 404);
  EXPECT_NE(no_route.body.find("NOT_FOUND"), std::string::npos);
}

TEST_F(GatewayFaultTest, SaturatedGatewayShedsWith429) {
  GatewayOptions gateway;
  gateway.max_inflight_invokes = 0;  // Every invoke is over the limit.
  OptimusHttpService service(&costs_, Options(), gateway);
  service.platform().Deploy("fn", TinyVgg(11));
  const HttpResponse shed =
      service.Handle(Request("POST", "/invoke", {{"name", "fn"}}, input_csv_));
  EXPECT_EQ(shed.status, 429);
  EXPECT_NE(shed.body.find("RESOURCE_EXHAUSTED"), std::string::npos);
  EXPECT_EQ(service.Sheds(), 1u);
}

TEST_F(GatewayFaultTest, DroppedRequestIs503) {
  OptimusHttpService service(&costs_, Options());
  service.platform().Deploy("fn", TinyVgg(11));
  fault::ScopedFaults faults("gateway.drop=always");
  const HttpResponse dropped =
      service.Handle(Request("POST", "/invoke", {{"name", "fn"}}, input_csv_));
  EXPECT_EQ(dropped.status, 503);
  EXPECT_NE(dropped.body.find("UNAVAILABLE"), std::string::npos);
  EXPECT_EQ(service.Drops(), 1u);
}

TEST_F(GatewayFaultTest, RetryRecoversFromTransientLoadFault) {
  OptimusHttpService service(&costs_, Options());
  service.platform().Deploy("fn", TinyVgg(11));
  // The first scratch load fails (UNAVAILABLE, retryable); the gateway's
  // bounded retry succeeds on the second attempt.
  fault::ScopedFaults faults("loader.load=once");
  const HttpResponse ok =
      service.Handle(Request("POST", "/invoke", {{"name", "fn"}}, input_csv_));
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("start=Cold"), std::string::npos);
  EXPECT_EQ(service.Retries(), 1u);

  const HttpResponse stats = service.Handle(Request("GET", "/stats"));
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("gateway_retries=1"), std::string::npos);
  EXPECT_NE(stats.body.find("failed_invokes=1"), std::string::npos);
}

TEST_F(GatewayFaultTest, RetriesExhaustedSurfaces503) {
  GatewayOptions gateway;
  gateway.max_retries = 1;
  gateway.retry_backoff = 0.001;
  OptimusHttpService service(&costs_, Options(), gateway);
  service.platform().Deploy("fn", TinyVgg(11));
  fault::ScopedFaults faults("loader.load=always");
  const HttpResponse unavailable =
      service.Handle(Request("POST", "/invoke", {{"name", "fn"}}, input_csv_));
  EXPECT_EQ(unavailable.status, 503);
  EXPECT_NE(unavailable.body.find("UNAVAILABLE"), std::string::npos);
  EXPECT_EQ(service.Retries(), 1u);
}

TEST_F(GatewayFaultTest, SlowFaultTripsTheDeadline) {
  GatewayOptions gateway;
  gateway.default_deadline = 0.01;
  gateway.slow_fault_delay = 0.05;
  OptimusHttpService service(&costs_, Options(), gateway);
  service.platform().Deploy("fn", TinyVgg(11));
  fault::ScopedFaults faults("gateway.slow=always");
  const HttpResponse timed_out =
      service.Handle(Request("POST", "/invoke", {{"name", "fn"}}, input_csv_));
  EXPECT_EQ(timed_out.status, 504);
  EXPECT_NE(timed_out.body.find("DEADLINE_EXCEEDED"), std::string::npos);
  EXPECT_EQ(service.DeadlinesExceeded(), 1u);

  // A per-request deadline of 0 disables the deadline: the slow request
  // completes normally.
  const HttpResponse ok = service.Handle(
      Request("POST", "/invoke", {{"name", "fn"}, {"deadline", "0"}}, input_csv_));
  EXPECT_EQ(ok.status, 200);
}

}  // namespace
}  // namespace optimus
