// Heavier cross-system simulator invariants under realistic workloads:
// conservation, causality, component bounds, determinism, and ordering
// properties that must hold for every system and workload combination.

#include <gtest/gtest.h>

#include <map>

#include "src/sim/simulator.h"
#include "src/workload/azure.h"
#include "src/workload/poisson.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

struct SimCase {
  SystemType system;
  bool azure;
};

class SimInvariantsTest : public testing::TestWithParam<SimCase> {
 protected:
  static std::vector<Model> Models() {
    std::vector<Model> models;
    models.push_back(TinyVgg(11));
    models.push_back(TinyVgg(16));
    models.push_back(TinyVgg(19));
    models.push_back(TinyResNet(18));
    models.push_back(TinyResNet(34));
    models.push_back(TinyMobileNet());
    models.push_back(TinyBert(2, 64));
    models.push_back(TinyBert(4, 128));
    return models;
  }

  static Trace WorkloadFor(bool azure, const std::vector<Model>& models) {
    std::vector<std::string> names;
    for (const Model& model : models) {
      names.push_back(model.name());
    }
    if (azure) {
      AzureTraceOptions options;
      options.horizon_seconds = 3600.0;
      options.seed = 31;
      return GenerateAzureTrace(names, options);
    }
    PoissonTraceOptions options;
    options.horizon_seconds = 3600.0;
    options.seed = 31;
    return GenerateMixedPoissonTrace(names, options);
  }

  static SimConfig ConfigFor(SystemType system) {
    SimConfig config;
    config.system = system;
    config.num_nodes = 2;
    config.containers_per_node = 3;
    config.placement.kind = BalancerKind::kHash;
    return config;
  }
};

TEST_P(SimInvariantsTest, ConservationAndCausality) {
  const auto [system, azure] = GetParam();
  const auto models = Models();
  const Trace trace = WorkloadFor(azure, models);
  ASSERT_GT(trace.size(), 50u);
  AnalyticCostModel costs;
  const SimResult result = RunSimulation(models, trace, ConfigFor(system), costs);

  // Every request is recorded exactly once with its own function and arrival.
  ASSERT_EQ(result.records.size(), trace.size());
  const SystemProfile profile;
  for (size_t i = 0; i < trace.size(); ++i) {
    const RequestRecord& record = result.records[i];
    EXPECT_EQ(record.function, trace[i].function);
    EXPECT_DOUBLE_EQ(record.arrival, trace[i].arrival);
    // Causality: no negative phases.
    EXPECT_GE(record.wait, 0.0);
    EXPECT_GE(record.init, 0.0);
    EXPECT_GE(record.load, 0.0);
    EXPECT_GT(record.compute, 0.0);
    // Component bounds: init never exceeds a full cold init; warm starts pay
    // neither init nor load.
    EXPECT_LE(record.init, profile.InitCost() + 1e-9);
    if (record.start == StartType::kWarm) {
      EXPECT_EQ(record.init, 0.0);
      EXPECT_EQ(record.load, 0.0);
    }
  }
  // Start-type counts partition the request set.
  EXPECT_EQ(result.CountOf(StartType::kWarm) + result.CountOf(StartType::kTransform) +
                result.CountOf(StartType::kCold),
            trace.size());
}

TEST_P(SimInvariantsTest, LoadNeverExceedsScratchPlusTransfer) {
  // The safeguard guarantees the model-acquisition phase never exceeds a full
  // scratch load of the requested model (§4.4 worst case).
  const auto [system, azure] = GetParam();
  const auto models = Models();
  std::map<std::string, double> scratch;
  AnalyticCostModel costs;
  for (const Model& model : models) {
    scratch[model.name()] = costs.ScratchLoadCost(model);
  }
  const Trace trace = WorkloadFor(azure, models);
  const SimResult result = RunSimulation(models, trace, ConfigFor(system), costs);
  for (const RequestRecord& record : result.records) {
    EXPECT_LE(record.load, scratch.at(record.function) + 1e-9) << record.function;
  }
}

TEST_P(SimInvariantsTest, DeterministicReplay) {
  const auto [system, azure] = GetParam();
  const auto models = Models();
  const Trace trace = WorkloadFor(azure, models);
  AnalyticCostModel costs;
  const SimResult a = RunSimulation(models, trace, ConfigFor(system), costs);
  const SimResult b = RunSimulation(models, trace, ConfigFor(system), costs);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].ServiceTime(), b.records[i].ServiceTime());
    EXPECT_EQ(a.records[i].start, b.records[i].start);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SystemsAndWorkloads, SimInvariantsTest,
    testing::Values(SimCase{SystemType::kOpenWhisk, false}, SimCase{SystemType::kOpenWhisk, true},
                    SimCase{SystemType::kPagurus, false}, SimCase{SystemType::kPagurus, true},
                    SimCase{SystemType::kTetris, false}, SimCase{SystemType::kTetris, true},
                    SimCase{SystemType::kOptimus, false}, SimCase{SystemType::kOptimus, true}));

TEST(SimOrderingTest, OptimusNeverLosesToOpenWhiskAcrossSeeds) {
  // The headline claim, swept over workload seeds: Optimus' average service
  // time is at most OpenWhisk's under container scarcity.
  std::vector<Model> models;
  models.push_back(TinyVgg(11));
  models.push_back(TinyVgg(16));
  models.push_back(TinyVgg(19));
  models.push_back(TinyResNet(18));
  models.push_back(TinyResNet(34));
  std::vector<std::string> names;
  for (const Model& model : models) {
    names.push_back(model.name());
  }
  AnalyticCostModel costs;
  for (const uint64_t seed : {1u, 7u, 21u, 99u}) {
    PoissonTraceOptions options;
    options.horizon_seconds = 3600.0;
    options.seed = seed;
    const Trace trace = GenerateMixedPoissonTrace(names, options);
    double service[2] = {};
    int i = 0;
    for (const SystemType system : {SystemType::kOpenWhisk, SystemType::kOptimus}) {
      SimConfig config;
      config.system = system;
      config.num_nodes = 1;
      config.containers_per_node = 2;
      config.placement.kind = BalancerKind::kHash;
      service[i++] = RunSimulation(models, trace, config, costs).AvgServiceTime();
    }
    EXPECT_LE(service[1], service[0] + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace optimus
