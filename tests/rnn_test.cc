// Tests for the RNN zoo extension (§7: the meta-operator interface covers
// CNN, RNN and transformer models).

#include "src/zoo/rnn.h"

#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "src/core/transformer.h"
#include "src/runtime/inference.h"

namespace optimus {
namespace {

RnnConfig SmallLstm(int layers, int64_t hidden) {
  RnnConfig config;
  config.name = "lstm_l" + std::to_string(layers) + "_h" + std::to_string(hidden);
  config.num_layers = layers;
  config.vocab_size = 1000;
  config.embedding_dim = 32;
  config.hidden = hidden;
  return config;
}

TEST(RnnZooTest, LstmWeightShapes) {
  OpAttributes attrs;
  attrs.in_channels = 32;
  attrs.out_channels = 64;
  const auto shapes = WeightShapesFor(OpKind::kLstmCell, attrs);
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0], Shape({32, 4 * 64}));   // Input kernel over 4 gates.
  EXPECT_EQ(shapes[1], Shape({64, 4 * 64}));   // Recurrent kernel.
  EXPECT_EQ(shapes[2], Shape({4 * 64}));       // Gate bias.
  EXPECT_TRUE(OpKindHasWeights(OpKind::kLstmCell));
}

TEST(RnnZooTest, GruHasThreeGates) {
  OpAttributes attrs;
  attrs.in_channels = 16;
  attrs.out_channels = 16;
  EXPECT_EQ(WeightElementsFor(OpKind::kGruCell, attrs),
            16 * 48 + 16 * 48 + 48);
}

TEST(RnnZooTest, ModelsValidate) {
  BuildRnn(SmallLstm(2, 64)).Validate();
  RnnConfig gru = SmallLstm(3, 32);
  gru.use_gru = true;
  gru.name = "gru_small";
  const Model model = BuildRnn(gru);
  model.Validate();
  EXPECT_EQ(model.family(), "gru");
}

TEST(RnnZooTest, DepthGrowsOpsAndParams) {
  const Model shallow = BuildRnn(SmallLstm(1, 64));
  const Model deep = BuildRnn(SmallLstm(4, 64));
  EXPECT_LT(shallow.NumOps(), deep.NumOps());
  EXPECT_LT(shallow.ParamCount(), deep.ParamCount());
}

TEST(RnnZooTest, InferenceRuns) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const ModelInstance instance = loader.Instantiate(BuildRnn(SmallLstm(2, 64)), 1);
  const auto output = RunInference(instance, std::vector<float>(8, 0.3f));
  EXPECT_EQ(output.size(), 2u);  // Binary classifier + softmax.
  EXPECT_NEAR(output[0] + output[1], 1.0, 1e-5);
}

TEST(RnnTransformTest, LstmToLstmTransformsAndServes) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  Transformer transformer(&costs);
  ModelInstance container = loader.Instantiate(BuildRnn(SmallLstm(2, 64)), 1);
  const ModelInstance dest = loader.Instantiate(BuildRnn(SmallLstm(3, 128)), 2);
  const TransformOutcome outcome = transformer.TransformOrLoad(&container, dest.model);
  EXPECT_TRUE(outcome.decision.use_transform);
  EXPECT_TRUE(container.model.Identical(dest.model));
  const std::vector<float> input(8, 0.1f);
  EXPECT_EQ(RunInference(container, input), RunInference(dest, input));
}

TEST(RnnTransformTest, LstmAndGruDoNotSubstitute) {
  // Different cell kinds cannot transform into each other; the plan must Add
  // the destination cells and Reduce the source ones.
  AnalyticCostModel costs;
  RnnConfig gru_config = SmallLstm(2, 64);
  gru_config.use_gru = true;
  gru_config.name = "gru_variant";
  const Model lstm = BuildRnn(SmallLstm(2, 64));
  const Model gru = BuildRnn(gru_config);
  const TransformPlan plan = PlanTransform(lstm, gru, costs, PlannerKind::kGroup);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kAdd), 2);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kReduce), 2);
}

TEST(RnnTransformTest, WideningReshapesCells) {
  AnalyticCostModel costs;
  const TransformPlan plan = PlanTransform(BuildRnn(SmallLstm(2, 64)),
                                           BuildRnn(SmallLstm(2, 128)), costs,
                                           PlannerKind::kGroup);
  EXPECT_GT(plan.CountOf(MetaOpKind::kReshape), 0);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kAdd), 0);
}

}  // namespace
}  // namespace optimus
