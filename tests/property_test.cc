// Cross-module property sweeps:
//   * transformation correctness over random NAS-Bench-201 pairs (the
//     paper's "thousands of structurally similar models" regime),
//   * serializer robustness against random corruption (never crashes: either
//     throws or yields a model),
//   * plan-cache persistence round trips through the §7 plan files,
//   * safeguard totality across a mixed zoo sample.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/rng.h"
#include "src/core/plan_io.h"
#include "src/core/transformer.h"
#include "src/graph/serialization.h"
#include "src/runtime/inference.h"
#include "src/zoo/nasbench.h"
#include "src/zoo/squeezenet.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

// --- NAS-Bench transformation sweep -----------------------------------------

class NasBenchTransformTest : public testing::TestWithParam<int> {};

TEST_P(NasBenchTransformTest, TransformYieldsIdenticalModel) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int64_t from_index = rng.UniformInt(0, kNasBenchSpaceSize - 1);
  const int64_t to_index = rng.UniformInt(0, kNasBenchSpaceSize - 1);
  NasBenchOptions options;
  options.cells_per_stack = 2;  // Keep the sweep fast.
  const Model from = BuildNasBenchModel(from_index, options);
  const Model to = BuildNasBenchModel(to_index, options);
  if (from.name() == to.name()) {
    GTEST_SKIP() << "sampled identical architectures";
  }

  AnalyticCostModel costs;
  Loader loader(&costs);
  Transformer transformer(&costs);
  ModelInstance container = loader.Instantiate(from, 100 + static_cast<uint64_t>(GetParam()));
  const ModelInstance dest = loader.Instantiate(to, 200 + static_cast<uint64_t>(GetParam()));
  transformer.TransformOrLoad(&container, dest.model);
  EXPECT_TRUE(container.model.Identical(dest.model))
      << from.name() << " -> " << to.name();
  // The transformed container serves the destination function.
  const std::vector<float> input(4, 0.25f);
  EXPECT_EQ(RunInference(container, input), RunInference(dest, input));
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, NasBenchTransformTest, testing::Range(0, 25));

// --- Serializer corruption fuzz ---------------------------------------------

class SerializerFuzzTest : public testing::TestWithParam<int> {};

TEST_P(SerializerFuzzTest, CorruptionNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  AnalyticCostModel costs;
  Loader loader(&costs);
  const ModelInstance instance = loader.Instantiate(TinyMobileNet(), 3);
  ModelFile file = SerializeModel(instance.model);

  // Flip a handful of random bytes.
  const int flips = 1 + static_cast<int>(rng.UniformInt(0, 7));
  for (int i = 0; i < flips; ++i) {
    const size_t index = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(file.size()) - 1));
    file[index] ^= static_cast<uint8_t>(1 + rng.UniformInt(0, 254));
  }
  // Occasionally truncate as well.
  if (rng.Bernoulli(0.3)) {
    file.resize(static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(file.size()))));
  }

  try {
    const Model model = DeserializeModel(file);
    // If parsing survived, the result must at least be internally countable.
    EXPECT_LE(model.NumOps(), 100000u);
  } catch (const std::exception&) {
    // Rejection is the expected outcome for most corruptions.
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCorruption, SerializerFuzzTest, testing::Range(0, 30));

// --- Plan cache persistence ---------------------------------------------------

TEST(PlanCachePersistenceTest, SaveLoadRoundTrip) {
  AnalyticCostModel costs;
  PlanCache cache(&costs);
  const Model vgg11 = TinyVgg(11);
  const Model vgg16 = TinyVgg(16);
  const Model resnet = TinyResNet(18);
  cache.GetOrPlan(vgg11, vgg16);
  cache.GetOrPlan(vgg16, resnet);
  const double expected_cost = cache.GetOrPlan(vgg11, vgg16).total_cost;

  const std::string path = testing::TempDir() + "/optimus_plan_cache.txt";
  cache.Save(path);

  PlanCache restored(&costs);
  restored.Load(path);
  EXPECT_EQ(restored.Size(), 2u);
  EXPECT_TRUE(restored.Contains("tiny_vgg11", "tiny_vgg16"));
  EXPECT_TRUE(restored.Contains("tiny_vgg16", "tiny_resnet18"));
  // A restored plan is served from the cache (no re-planning miss)...
  const size_t misses_before = restored.misses();
  const TransformPlan& plan = restored.GetOrPlan(vgg11, vgg16);
  EXPECT_EQ(restored.misses(), misses_before);
  EXPECT_DOUBLE_EQ(plan.total_cost, expected_cost);
  // ...and remains executable.
  Loader loader(&costs);
  ModelInstance source = loader.Instantiate(vgg11, 1);
  const ModelInstance dest = loader.Instantiate(vgg16, 2);
  ExecutePlan(&source, dest.model, plan);
  EXPECT_TRUE(source.model.Identical(dest.model));
  std::remove(path.c_str());
}

// --- Safeguard totality over a mixed zoo sample ------------------------------

TEST(SafeguardPropertyTest, ChosenPathNeverExceedsScratchAcrossMixedZoo) {
  AnalyticCostModel costs;
  Transformer transformer(&costs);
  std::vector<Model> sample;
  sample.push_back(TinyVgg(11));
  sample.push_back(TinyResNet(34));
  sample.push_back(TinyMobileNet());
  sample.push_back(TinyBert(2, 64));
  sample.push_back(BuildSqueezeNet(100));
  NasBenchOptions options;
  options.cells_per_stack = 2;
  sample.push_back(BuildNasBenchModel(1234, options));
  for (const Model& source : sample) {
    for (const Model& dest : sample) {
      if (source.name() == dest.name()) {
        continue;
      }
      const TransformDecision decision = transformer.Decide(source, dest);
      EXPECT_LE(decision.ChosenCost(), decision.scratch_cost + 1e-12)
          << source.name() << " -> " << dest.name();
      EXPECT_GT(decision.ChosenCost(), 0.0);
    }
  }
}

TEST(SqueezeNetTest, StructureAndParams) {
  const Model model = BuildSqueezeNet();
  model.Validate();
  // SqueezeNet v1.0 has ~1.25M parameters.
  EXPECT_NEAR(static_cast<double>(model.ParamCount()) / 1e6, 1.25, 0.15);
  int concats = 0;
  for (const auto& [id, op] : model.ops()) {
    concats += op.kind == OpKind::kConcat ? 1 : 0;
  }
  EXPECT_EQ(concats, 8);  // One per fire module.
}

}  // namespace
}  // namespace optimus
