#include "src/core/planner.h"

#include <gtest/gtest.h>

#include <set>

#include "src/core/cost_matrix.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

class PlannerTest : public testing::Test {
 protected:
  // Checks that a mapping is a valid partial bijection covering both models.
  void CheckMappingValid(const Model& source, const Model& dest, const OpMapping& mapping) {
    std::set<OpId> src_seen;
    std::set<OpId> dst_seen;
    for (const auto& [s, d] : mapping.matched) {
      EXPECT_TRUE(source.HasOp(s));
      EXPECT_TRUE(dest.HasOp(d));
      EXPECT_EQ(source.op(s).kind, dest.op(d).kind);
      EXPECT_TRUE(src_seen.insert(s).second) << "source op matched twice";
      EXPECT_TRUE(dst_seen.insert(d).second) << "dest op matched twice";
    }
    for (const OpId s : mapping.reduced) {
      EXPECT_TRUE(src_seen.insert(s).second) << "source op used twice";
    }
    for (const OpId d : mapping.added) {
      EXPECT_TRUE(dst_seen.insert(d).second) << "dest op used twice";
    }
    EXPECT_EQ(src_seen.size(), source.NumOps());
    EXPECT_EQ(dst_seen.size(), dest.NumOps());
  }

  AnalyticCostModel costs_;
};

TEST_F(PlannerTest, CostMatrixShape) {
  const Model a = SmallChain("a", 3, 8);
  const Model b = SmallChain("b", 5, 8);
  const TransformCostMatrix matrix = BuildCostMatrix(a, b, costs_);
  EXPECT_EQ(matrix.n(), 4u);
  EXPECT_EQ(matrix.m(), 4u);
  EXPECT_EQ(matrix.costs.size(), 8u);
  // Deletion/insertion diagonals are finite, off-diagonals forbidden.
  EXPECT_LT(matrix.costs[0][4], kForbiddenCost);
  EXPECT_GE(matrix.costs[0][5], kForbiddenCost);
  EXPECT_LT(matrix.costs[4][0], kForbiddenCost);
  EXPECT_GE(matrix.costs[5][0], kForbiddenCost);
  // Bottom-right block is zero.
  EXPECT_EQ(matrix.costs[5][5], 0.0);
}

TEST_F(PlannerTest, SubstitutionForbiddenAcrossKinds) {
  Operation conv;
  conv.kind = OpKind::kConv2D;
  conv.attrs = ConvAttrs(3, 4, 8);
  Operation dense;
  dense.kind = OpKind::kDense;
  dense.attrs = DenseAttrs(4, 8);
  EXPECT_GE(SubstitutionCost(conv, dense, costs_), kForbiddenCost);
  EXPECT_LT(SubstitutionCost(conv, conv, costs_), kForbiddenCost);
}

TEST_F(PlannerTest, AllPlannersProduceValidMappings) {
  const Model source = SmallChain("src", 3, 8);
  const Model dest = SmallChain("dst", 5, 16);
  for (const PlannerKind kind :
       {PlannerKind::kBruteForce, PlannerKind::kBasic, PlannerKind::kGroup}) {
    const TransformPlan plan = PlanTransform(source, dest, costs_, kind);
    CheckMappingValid(source, dest, plan.mapping);
    EXPECT_GT(plan.total_cost, 0.0);
    EXPECT_GE(plan.planning_seconds, 0.0);
  }
}

TEST_F(PlannerTest, BasicMatchesBruteForceOnTinyModels) {
  // Optimality certificate: Munkres equals exhaustive enumeration.
  const Model source = SmallChain("src", 3, 8);
  for (const int64_t kernel : {1, 3, 5}) {
    for (const int64_t channels : {4, 8, 32}) {
      const Model dest = SmallChain("dst", kernel, channels);
      const TransformPlan brute = PlanTransform(source, dest, costs_, PlannerKind::kBruteForce);
      const TransformPlan basic = PlanTransform(source, dest, costs_, PlannerKind::kBasic);
      EXPECT_NEAR(brute.total_cost, basic.total_cost, 1e-9)
          << "kernel=" << kernel << " channels=" << channels;
    }
  }
}

TEST_F(PlannerTest, BruteForceRejectsLargeModels) {
  EXPECT_THROW(PlanTransform(TinyVgg(11), TinyVgg(16), costs_, PlannerKind::kBruteForce),
               std::invalid_argument);
}

TEST_F(PlannerTest, IdenticalStructuresNeedOnlyReplace) {
  // Case 1 of §3.3: same structure, different weights -> pure Replace.
  const Model a = TinyVgg(16);
  Model b = TinyVgg(16);
  b.set_name("tiny_vgg16_b");
  const TransformPlan plan = PlanTransform(a, b, costs_, PlannerKind::kGroup);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kReshape), 0);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kReduce), 0);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kAdd), 0);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kEdge), 0);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kReplace), static_cast<int>(a.NumWeightedOps()));
}

TEST_F(PlannerTest, GroupIsNearOptimalWithinFamily) {
  // Module 2+ claims near-optimality; verify on family pairs.
  const struct {
    Model source;
    Model dest;
  } cases[] = {
      {TinyVgg(11), TinyVgg(16)},
      {TinyVgg(16), TinyVgg(19)},
      {TinyResNet(18), TinyResNet(34)},
  };
  for (const auto& pair : cases) {
    const double basic = PlanTransform(pair.source, pair.dest, costs_, PlannerKind::kBasic)
                             .total_cost;
    const double group = PlanTransform(pair.source, pair.dest, costs_, PlannerKind::kGroup)
                             .total_cost;
    EXPECT_GE(group, basic - 1e-9);
    EXPECT_LT(group, basic * 1.25) << pair.source.name() << " -> " << pair.dest.name();
  }
}

TEST_F(PlannerTest, GroupPlanningMuchFasterThanBasic) {
  // Table 1: the improved planner cuts planning time by orders of magnitude.
  const Model source = TinyVgg(16);
  const Model dest = TinyResNet(50);
  const TransformPlan basic = PlanTransform(source, dest, costs_, PlannerKind::kBasic);
  const TransformPlan group = PlanTransform(source, dest, costs_, PlannerKind::kGroup);
  EXPECT_LT(group.planning_seconds, basic.planning_seconds);
}

TEST_F(PlannerTest, ShrinkingUsesReduceGrowingUsesAdd) {
  // §8.2's asymmetry mechanism: large->small reduces, small->large adds.
  const TransformPlan shrink =
      PlanTransform(TinyResNet(34), TinyResNet(18), costs_, PlannerKind::kGroup);
  EXPECT_GT(shrink.CountOf(MetaOpKind::kReduce), 0);
  EXPECT_EQ(shrink.CountOf(MetaOpKind::kAdd), 0);
  const TransformPlan grow =
      PlanTransform(TinyResNet(18), TinyResNet(34), costs_, PlannerKind::kGroup);
  EXPECT_GT(grow.CountOf(MetaOpKind::kAdd), 0);
  EXPECT_EQ(grow.CountOf(MetaOpKind::kReduce), 0);
}

TEST_F(PlannerTest, TransformAsymmetry) {
  // Fig. 11's second observation: large -> small is cheaper than small -> large.
  const double shrink =
      PlanTransform(TinyVgg(19), TinyVgg(11), costs_, PlannerKind::kGroup).total_cost;
  const double grow =
      PlanTransform(TinyVgg(11), TinyVgg(19), costs_, PlannerKind::kGroup).total_cost;
  EXPECT_LT(shrink, grow);
}

TEST_F(PlannerTest, SameFamilyCheaperThanCrossFamily) {
  const double within =
      PlanTransform(TinyVgg(16), TinyVgg(19), costs_, PlannerKind::kGroup).total_cost;
  const double across =
      PlanTransform(TinyVgg(16), TinyResNet(50), costs_, PlannerKind::kGroup).total_cost;
  EXPECT_LT(within, across);
}

TEST_F(PlannerTest, TransformCheaperThanScratchLoadWithinFamily) {
  const Model dest = TinyVgg(19);
  const double transform =
      PlanTransform(TinyVgg(16), dest, costs_, PlannerKind::kGroup).total_cost;
  EXPECT_LT(transform, costs_.ScratchLoadCost(dest) * 0.6);
}

TEST_F(PlannerTest, CnnToTransformerGainsLittle) {
  // §8.2: CNN <-> transformer transformation is barely (if at all) cheaper
  // than a scratch load — the attention/embedding ops must all be Added — so
  // the safeguard's scratch fallback stays competitive.
  const Model dest = TinyBert(2, 64);
  const double cross =
      PlanTransform(TinyVgg(11), dest, costs_, PlannerKind::kGroup).total_cost;
  const double within =
      PlanTransform(TinyBert(4, 128), dest, costs_, PlannerKind::kGroup).total_cost;
  const double scratch = costs_.ScratchLoadCost(dest);
  EXPECT_GT(cross, scratch * 0.5);
  EXPECT_LT(within, cross);
}

TEST_F(PlannerTest, BertVariantTransformsCheaply) {
  // §5.2 Example 1: shrinking a BERT via Reshape + Reduce.
  const Model big = TinyBert(4, 128);
  const Model small = TinyBert(2, 64);
  const TransformPlan plan = PlanTransform(big, small, costs_, PlannerKind::kGroup);
  EXPECT_GT(plan.CountOf(MetaOpKind::kReshape), 0);
  EXPECT_GT(plan.CountOf(MetaOpKind::kReduce), 0);
  EXPECT_LT(plan.total_cost, costs_.ScratchLoadCost(small));
}

TEST_F(PlannerTest, EditDistanceOfIdenticalStructureIsSmall) {
  Model a = TinyVgg(11);
  Model b = TinyVgg(11);
  b.set_name("b");
  const double same = ModelEditDistance(a, b, costs_);
  const double diff = ModelEditDistance(a, TinyResNet(18), costs_);
  EXPECT_LT(same, diff);
}

TEST_F(PlannerTest, PlanToStringMentionsMetaOps) {
  const TransformPlan plan =
      PlanTransform(TinyVgg(11), TinyVgg(16), costs_, PlannerKind::kGroup);
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("Replace"), std::string::npos);
  EXPECT_NE(text.find("Add"), std::string::npos);
}

// Property sweep: every planner yields consistent plans whose cost equals the
// sum of step costs, across a grid of model pairs.
struct PlannerCase {
  const char* source;
  const char* dest;
};

class PlannerPropertyTest
    : public testing::TestWithParam<std::tuple<PlannerKind, PlannerCase>> {};

Model BuildNamed(const std::string& name) {
  if (name == "vgg11") {
    return TinyVgg(11);
  }
  if (name == "vgg16") {
    return TinyVgg(16);
  }
  if (name == "resnet18") {
    return TinyResNet(18);
  }
  if (name == "mobilenet") {
    return TinyMobileNet();
  }
  if (name == "bert2") {
    return TinyBert(2, 64);
  }
  return TinyBert(4, 128);
}

TEST_P(PlannerPropertyTest, PlanCostEqualsStepSum) {
  const auto [kind, model_pair] = GetParam();
  AnalyticCostModel costs;
  const Model source = BuildNamed(model_pair.source);
  const Model dest = BuildNamed(model_pair.dest);
  const TransformPlan plan = PlanTransform(source, dest, costs, kind);
  double total = 0.0;
  for (const MetaOp& step : plan.steps) {
    EXPECT_GE(step.cost, 0.0);
    total += step.cost;
  }
  EXPECT_NEAR(total, plan.total_cost, 1e-9);
  // Counts reconcile with the mapping.
  EXPECT_EQ(plan.CountOf(MetaOpKind::kReduce), static_cast<int>(plan.mapping.reduced.size()));
  EXPECT_EQ(plan.CountOf(MetaOpKind::kAdd), static_cast<int>(plan.mapping.added.size()));
}

INSTANTIATE_TEST_SUITE_P(
    PairsAndPlanners, PlannerPropertyTest,
    testing::Combine(testing::Values(PlannerKind::kBasic, PlannerKind::kGroup),
                     testing::Values(PlannerCase{"vgg11", "vgg16"},
                                     PlannerCase{"vgg16", "resnet18"},
                                     PlannerCase{"resnet18", "mobilenet"},
                                     PlannerCase{"bert2", "bert4"},
                                     PlannerCase{"mobilenet", "bert2"})));

}  // namespace
}  // namespace optimus
