// Node lifecycle & churn resilience (DESIGN.md §16): the NodePool state
// machine, grace-window semantics, placement live-mask re-homing, the
// 30%-revocation storm E2E (zero lost/duplicated invokes, bounded
// re-convergence), gateway tenant admission + shedding, the fallback-ring
// dedupe regression, and the simulator's churn mirror.
//
// The whole file runs under TSan + OPTIMUS_LOCK_RANK=ON in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/node_pool.h"
#include "src/core/platform.h"
#include "src/gateway/service.h"
#include "src/placement/placement.h"
#include "src/sim/simulator.h"
#include "src/workload/trace.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

// --- NodePool state machine. ------------------------------------------------

TEST(NodePoolLifecycleTest, StateMachineTransitions) {
  NodePool pool(2, 2);
  EXPECT_EQ(pool.Lifecycle(0), NodeLifecycle::kUp);
  EXPECT_TRUE(pool.Accepting(0));
  EXPECT_EQ(pool.AcceptingNodes(), 2);

  // Up -> Draining with a grace window.
  EXPECT_TRUE(pool.RevokeNode(0, 30.0, 0.0));
  EXPECT_EQ(pool.Lifecycle(0), NodeLifecycle::kDraining);
  EXPECT_FALSE(pool.Accepting(0));
  EXPECT_EQ(pool.DrainingNodes(), 1);
  EXPECT_EQ(pool.Revocations(), 1u);
  // A second revoke of a draining node is a no-op.
  EXPECT_FALSE(pool.RevokeNode(0, 0.0, 0.0));

  // Inside the grace window the node is servable; past it, not.
  {
    NodePool::LockedNode node = pool.Lock(0);
    EXPECT_TRUE(node.Servable(10.0));
    EXPECT_FALSE(node.Servable(30.0));
  }
  // Finalization before the deadline does nothing…
  EXPECT_EQ(pool.FinalizeExpiredDrains(10.0), 0u);
  EXPECT_EQ(pool.Lifecycle(0), NodeLifecycle::kDraining);
  // …and at the deadline the node goes Down.
  pool.FinalizeExpiredDrains(30.0);
  EXPECT_EQ(pool.Lifecycle(0), NodeLifecycle::kDown);
  EXPECT_EQ(pool.DrainingNodes(), 0);
  EXPECT_EQ(pool.AcceptingNodes(), 1);

  // Down -> Reviving; reviving nodes accept routes again.
  EXPECT_TRUE(pool.ReviveNode(0));
  EXPECT_EQ(pool.Lifecycle(0), NodeLifecycle::kReviving);
  EXPECT_TRUE(pool.Accepting(0));
  EXPECT_EQ(pool.Revives(), 1u);

  // Zero grace kills on the spot: Up -> Down directly.
  EXPECT_TRUE(pool.RevokeNode(1, 0.0, 0.0));
  EXPECT_EQ(pool.Lifecycle(1), NodeLifecycle::kDown);
  EXPECT_EQ(pool.Revocations(), 2u);
}

TEST(NodePoolLifecycleTest, InvalidTransitionsRejected) {
  NodePool pool(2, 2);
  // Revive only applies to Down nodes.
  EXPECT_FALSE(pool.ReviveNode(0));
  ASSERT_TRUE(pool.RevokeNode(0, 0.0, 0.0));
  // Revoking a Down node is a no-op.
  EXPECT_FALSE(pool.RevokeNode(0, 10.0, 0.0));
  ASSERT_TRUE(pool.ReviveNode(0));
  // Reviving a Reviving node is a no-op.
  EXPECT_FALSE(pool.ReviveNode(0));
}

// --- Placement live mask. ---------------------------------------------------

TEST(PlacementLiveMaskTest, DeadNodeAssignmentsRehomeOverLiveRing) {
  const Placement assignment = {{"a", 0}, {"b", 1}, {"c", 2}};
  PlacementTable table(1, BalancerKind::kHash, 3, assignment, {0, 1, 1});
  EXPECT_FALSE(table.Live(0));
  EXPECT_TRUE(table.Live(1));
  EXPECT_EQ(table.live_nodes(), 2);
  // Dead node 0's function re-homes onto a live node; live assignments hold.
  const int rehomed = table.NodeOrHash("a");
  EXPECT_NE(rehomed, 0);
  EXPECT_TRUE(table.Live(rehomed));
  EXPECT_EQ(table.NodeOrHash("b"), 1);
  EXPECT_EQ(table.NodeOrHash("c"), 2);
  // Unknown functions hash onto the live ring only.
  for (int i = 0; i < 16; ++i) {
    const int node = table.NodeOrHash("unknown_" + std::to_string(i));
    EXPECT_NE(node, 0);
  }
}

TEST(PlacementLiveMaskTest, AllLiveMaskNormalizesToEmpty) {
  const Placement assignment = {{"a", 0}};
  PlacementTable table(1, BalancerKind::kHash, 2, assignment, {1, 1});
  EXPECT_TRUE(table.live_mask().empty());
  EXPECT_EQ(table.live_nodes(), 2);
}

// --- Platform lifecycle E2E. ------------------------------------------------

class PlatformLifecycleTest : public testing::Test {
 protected:
  static PlatformOptions Options(int num_nodes) {
    PlatformOptions options;
    options.num_nodes = num_nodes;
    options.containers_per_node = 2;
    options.warm_plan_cache = false;
    return options;
  }

  void Deploy(OptimusPlatform* platform) {
    platform->Deploy("vgg11", TinyVgg(11));
    platform->Deploy("vgg16", TinyVgg(16));
    platform->Deploy("mobilenet", TinyMobileNet());
    functions_ = {"vgg11", "vgg16", "mobilenet"};
  }

  std::vector<std::string> functions_;
  std::vector<float> input_ = std::vector<float>(8, 0.5f);
  AnalyticCostModel costs_;
};

TEST_F(PlatformLifecycleTest, RevokedNodeStopsRoutingAndReclaims) {
  OptimusPlatform platform(&costs_, Options(3));
  Deploy(&platform);
  // Warm every function so containers exist on their primary nodes.
  double now = 0.0;
  for (const std::string& function : functions_) {
    platform.Invoke(function, input_, now += 1.0);
  }
  const int victim = platform.Invoke(functions_[0], input_, now += 1.0).node;

  const size_t live_before = platform.NumLiveContainers();
  ASSERT_TRUE(platform.RevokeNode(victim, 0.0, now));
  // Zero grace: the node is Down, its containers reclaimed, and the
  // placement table republished with the node masked dead.
  EXPECT_EQ(platform.NodeState(victim), NodeLifecycle::kDown);
  EXPECT_FALSE(platform.PlacementSnapshot()->Live(victim));
  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.node_revocations, 1u);
  EXPECT_EQ(counters.reclaimed_containers, live_before - platform.NumLiveContainers());
  EXPECT_EQ(platform.AcceptingNodes(), 2);

  // Every function keeps serving — demand re-homed onto the survivors.
  for (int round = 0; round < 3; ++round) {
    for (const std::string& function : functions_) {
      const InvokeResult result = platform.Invoke(function, input_, now += 1.0);
      EXPECT_NE(result.node, victim);
    }
  }
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

TEST_F(PlatformLifecycleTest, GracefulDrainReclaimsAtDeadline) {
  OptimusPlatform platform(&costs_, Options(3));
  Deploy(&platform);
  double now = 0.0;
  for (const std::string& function : functions_) {
    platform.Invoke(function, input_, now += 1.0);
  }
  const int victim = platform.Invoke(functions_[0], input_, now += 1.0).node;

  ASSERT_TRUE(platform.RevokeNode(victim, 60.0, now));
  EXPECT_EQ(platform.NodeState(victim), NodeLifecycle::kDraining);
  EXPECT_EQ(platform.DrainingNodes(), 1);
  // New routes skip the draining node immediately.
  for (const std::string& function : functions_) {
    EXPECT_NE(platform.Invoke(function, input_, now += 1.0).node, victim);
  }
  EXPECT_EQ(platform.NodeState(victim), NodeLifecycle::kDraining);

  // Once the grace window closes, the next invoke finalizes the drain.
  const size_t reclaimed_before = platform.counters().reclaimed_containers;
  now += 120.0;
  platform.Invoke(functions_[1], input_, now);
  EXPECT_EQ(platform.NodeState(victim), NodeLifecycle::kDown);
  EXPECT_EQ(platform.DrainingNodes(), 0);
  EXPECT_GT(platform.counters().reclaimed_containers, reclaimed_before);
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

TEST_F(PlatformLifecycleTest, ReviveRestoresAcceptingAndAdoptPromotesToUp) {
  OptimusPlatform platform(&costs_, Options(2));
  Deploy(&platform);
  double now = 0.0;
  for (const std::string& function : functions_) {
    platform.Invoke(function, input_, now += 1.0);
  }
  ASSERT_TRUE(platform.RevokeNode(0, 0.0, now));
  EXPECT_EQ(platform.AcceptingNodes(), 1);
  ASSERT_TRUE(platform.ReviveNode(0));
  EXPECT_EQ(platform.NodeState(0), NodeLifecycle::kReviving);
  EXPECT_EQ(platform.AcceptingNodes(), 2);
  EXPECT_TRUE(platform.PlacementSnapshot()->Live(0));
  EXPECT_EQ(platform.counters().node_revives, 1u);

  // Keep invoking until the revived node adopts a container: the first adopt
  // promotes Reviving -> Up.
  for (int i = 0; i < 32 && platform.NodeState(0) != NodeLifecycle::kUp; ++i) {
    for (const std::string& function : functions_) {
      platform.Invoke(function, input_, now += 90.0);
    }
  }
  EXPECT_EQ(platform.NodeState(0), NodeLifecycle::kUp);
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

// The acceptance storm: kill 30% of a 5-node pool at once, assert the
// cold-start rate re-converges within a bounded number of rebalance rounds,
// then revive and reconcile every lifecycle counter.
TEST_F(PlatformLifecycleTest, ThirtyPercentStormReconvergesWithinBoundedRounds) {
  OptimusPlatform platform(&costs_, Options(5));
  Deploy(&platform);

  // Warm the placement: invoke each function until a full round is all-warm.
  double now = 0.0;
  for (int round = 0; round < 8; ++round) {
    bool all_warm = true;
    for (const std::string& function : functions_) {
      all_warm &= platform.Invoke(function, input_, now += 1.0).start == StartType::kWarm;
    }
    if (all_warm) break;
  }

  // Kill ceil(0.3 * 5) = 2 nodes, zero grace.
  const int kills = 2;
  int killed = 0;
  for (int node = 0; node < 5 && killed < kills; ++node) {
    if (platform.RevokeNode(node, 0.0, now)) ++killed;
  }
  ASSERT_EQ(killed, kills);
  EXPECT_EQ(platform.AcceptingNodes(), 3);

  // Bounded convergence: within K rounds after the storm every request is
  // warm again (the re-homed placement has re-warmed the survivors).
  const int kConvergenceRounds = 4;
  int warm_round = -1;
  for (int round = 0; round < kConvergenceRounds; ++round) {
    bool all_warm = true;
    for (const std::string& function : functions_) {
      const InvokeResult result = platform.Invoke(function, input_, now += 1.0);
      all_warm &= result.start == StartType::kWarm;
    }
    if (all_warm) {
      warm_round = round;
      break;
    }
  }
  EXPECT_GE(warm_round, 0) << "cold-start rate did not recover within "
                           << kConvergenceRounds << " rounds";

  // Revive the dead nodes; counters reconcile and integrity holds.
  size_t revived = 0;
  for (int node = 0; node < 5; ++node) {
    if (platform.NodeState(node) == NodeLifecycle::kDown && platform.ReviveNode(node)) {
      ++revived;
    }
  }
  EXPECT_EQ(revived, static_cast<size_t>(kills));
  const PlatformCounters counters = platform.counters();
  EXPECT_EQ(counters.node_revocations, static_cast<size_t>(kills));
  EXPECT_EQ(counters.node_revives, revived);
  EXPECT_EQ(counters.draining_nodes, 0);
  EXPECT_EQ(counters.accepting_nodes, 5);
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

// Concurrent storm under TSan: invoker threads race scheduled revokes and
// revives. Zero lost or duplicated invokes — every request is exactly one
// success or one retryable UNAVAILABLE — and the pool is whole afterwards.
TEST_F(PlatformLifecycleTest, ConcurrentStormLosesNoInvokes) {
  OptimusPlatform platform(&costs_, Options(5));
  Deploy(&platform);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::atomic<int> ok{0};
  std::atomic<int> unavailable{0};
  std::atomic<long> ticks{0};

  std::vector<std::thread> invokers;
  invokers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    invokers.emplace_back([&, t] {
      Rng rng(0x57072 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const std::string& function = functions_[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(functions_.size()) - 1))];
        const double now = static_cast<double>(ticks.fetch_add(1)) * 0.5;
        InvokeResult result;
        const Status status = platform.TryInvoke(function, input_, now, &result);
        if (status.ok()) {
          ok.fetch_add(1);
        } else {
          // Churn may only surface as the retryable code.
          EXPECT_EQ(status.code(), ErrorCode::kUnavailable) << status.message();
          unavailable.fetch_add(1);
        }
      }
    });
  }

  // Storm driver: kill/revive 30% (nodes 0 and 1) in cycles while the
  // invokers run. Mixed grace exercises both reclaim paths.
  for (int cycle = 0; cycle < 4; ++cycle) {
    const double now = static_cast<double>(ticks.fetch_add(1)) * 0.5;
    platform.RevokeNode(0, 0.0, now);
    platform.RevokeNode(1, 5.0, now);
    std::this_thread::yield();
    for (int node = 0; node < 2; ++node) {
      if (platform.NodeState(node) == NodeLifecycle::kDown) {
        platform.ReviveNode(node);
      }
    }
  }
  for (std::thread& thread : invokers) {
    thread.join();
  }

  // Settle: revive stragglers, then let one far-future invoke finalize any
  // outstanding drain.
  for (int node = 0; node < 5; ++node) {
    if (platform.NodeState(node) == NodeLifecycle::kDown) {
      ASSERT_TRUE(platform.ReviveNode(node));
    }
  }
  const double settle = static_cast<double>(ticks.fetch_add(1)) * 0.5 + 1000.0;
  platform.Invoke(functions_[0], input_, settle);

  EXPECT_EQ(ok.load() + unavailable.load(), kThreads * kPerThread);
  const PlatformCounters counters = platform.counters();
  // Start counters count exactly the successes (+1 for the settling invoke):
  // nothing lost, nothing double-counted.
  EXPECT_EQ(counters.warm_starts + counters.transforms + counters.cold_starts,
            static_cast<size_t>(ok.load()) + 1);
  EXPECT_EQ(counters.failed_invokes, static_cast<size_t>(unavailable.load()));
  EXPECT_EQ(counters.draining_nodes, 0);
  EXPECT_EQ(counters.accepting_nodes, 5);
  EXPECT_TRUE(platform.CheckContainerIntegrity().empty());
}

// Regression (small pools): with route_fallback_breadth larger than the
// pool, the fallback ring must not revisit nodes — bounded lock work per
// invoke, even under capacity pressure.
TEST_F(PlatformLifecycleTest, FallbackRingNeverRevisitsNodesOnSmallPools) {
  PlatformOptions options = Options(2);
  options.containers_per_node = 1;  // Constant capacity pressure.
  options.route_fallback_breadth = 5;
  OptimusPlatform platform(&costs_, options);
  Deploy(&platform);

  double now = 0.0;
  for (int i = 0; i < 12; ++i) {
    const std::string& function = functions_[static_cast<size_t>(i) % functions_.size()];
    const uint64_t locks_before = platform.NodeLockAcquisitions();
    platform.Invoke(function, input_, now += 90.0);
    const uint64_t locks = platform.NodeLockAcquisitions() - locks_before;
    // At most: the primary, each *distinct* neighbor once, and the adopt
    // re-lock. A duplicate-probing ring would exceed this on 2 nodes.
    EXPECT_LE(locks, 3u) << "invoke " << i << " took " << locks << " node locks";
  }
}

// node.revoke fault: the routed node dies mid-invoke; the request fails
// retryable and the revocation is real (counted, mask updated).
TEST_F(PlatformLifecycleTest, RevokeFaultFailsRetryableAndRevokes) {
  OptimusPlatform platform(&costs_, Options(3));
  Deploy(&platform);
  platform.Invoke(functions_[0], input_, 1.0);

  fault::ScopedFaults faults("node.revoke=once");
  InvokeResult result;
  const Status status = platform.TryInvoke(functions_[0], input_, 2.0, &result);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(platform.counters().node_revocations, 1u);
  EXPECT_EQ(platform.AcceptingNodes(), 2);
  // The very next attempt re-homes and succeeds.
  EXPECT_TRUE(platform.TryInvoke(functions_[0], input_, 3.0, &result).ok());
}

// --- Gateway: tenant admission and shedding. --------------------------------

class TenantGatewayTest : public testing::Test {
 protected:
  static PlatformOptions PlatformOpts() {
    PlatformOptions options;
    options.num_nodes = 2;
    options.containers_per_node = 2;
    options.warm_plan_cache = false;
    return options;
  }

  static GatewayOptions GatewayOpts() {
    GatewayOptions gateway;
    gateway.tenant_rate = 2.0;  // 2 tokens/sec, burst 2.
    gateway.max_batch_size = 1;
    return gateway;
  }

  HttpResponse Invoke(OptimusHttpService* service, const std::string& tenant) {
    HttpRequest request;
    request.method = "POST";
    request.path = "/invoke";
    request.query["name"] = "vgg11";
    if (!tenant.empty()) {
      request.query["tenant"] = tenant;
    }
    request.body = "0.5,0.5,0.5,0.5";
    return service->Handle(request);
  }

  AnalyticCostModel costs_;
  double virtual_time_ = 0.0;
};

TEST_F(TenantGatewayTest, QuotaExhaustionGets429WithRetryAfter) {
  OptimusHttpService service(&costs_, PlatformOpts(), GatewayOpts(),
                             [this] { return virtual_time_; });
  service.platform().Deploy("vgg11", TinyVgg(11));

  // Burst of 2 admitted; the third is over quota.
  EXPECT_EQ(Invoke(&service, "alice").status, 200);
  EXPECT_EQ(Invoke(&service, "alice").status, 200);
  const HttpResponse rejected = Invoke(&service, "alice");
  EXPECT_EQ(rejected.status, 429);
  EXPECT_NE(rejected.body.find("\"error\""), std::string::npos);
  EXPECT_NE(rejected.body.find("RESOURCE_EXHAUSTED"), std::string::npos);
  ASSERT_TRUE(rejected.headers.count("Retry-After"));
  EXPECT_GE(std::stoi(rejected.headers.at("Retry-After")), 1);

  // After the advertised wait the bucket has refilled.
  virtual_time_ += 1.0;
  EXPECT_EQ(Invoke(&service, "alice").status, 200);
}

TEST_F(TenantGatewayTest, SaturatingTenantDoesNotDegradeOthers) {
  OptimusHttpService service(&costs_, PlatformOpts(), GatewayOpts(),
                             [this] { return virtual_time_; });
  service.platform().Deploy("vgg11", TinyVgg(11));

  // Tenant A floods far past its quota; tenant B trickles within quota.
  size_t a_ok = 0, a_rejected = 0, b_ok = 0, b_rejected = 0;
  for (int second = 0; second < 5; ++second) {
    virtual_time_ = static_cast<double>(second);
    for (int burst = 0; burst < 10; ++burst) {
      const int status = Invoke(&service, "alice").status;
      (status == 200 ? a_ok : a_rejected) += 1;
    }
    const int status = Invoke(&service, "bob").status;
    (status == 200 ? b_ok : b_rejected) += 1;
  }
  // A is throttled to roughly its rate; B sees zero errors — its quota is
  // its own, and A's rejected burst never consumed gateway capacity.
  EXPECT_GT(a_rejected, a_ok);
  EXPECT_EQ(b_rejected, 0u);
  EXPECT_EQ(b_ok, 5u);

  // Per-tenant telemetry: rejections charged to A only.
  auto& metrics = service.platform().metrics();
  EXPECT_GT(metrics.GetCounter("optimus_gateway_tenant_rejections_total",
                               {{"tenant", "alice"}}).Value(), 0.0);
  EXPECT_EQ(metrics.GetCounter("optimus_gateway_tenant_rejections_total",
                               {{"tenant", "bob"}}).Value(), 0.0);
  EXPECT_EQ(metrics.GetCounter("optimus_gateway_tenant_requests_total",
                               {{"tenant", "bob"}}).Value(), 5.0);
}

TEST_F(TenantGatewayTest, RequestsWithoutTenantBypassAdmission) {
  GatewayOptions gateway = GatewayOpts();
  gateway.tenant_rate = 0.5;  // Severe quota — but only for attributed requests.
  OptimusHttpService service(&costs_, PlatformOpts(), gateway,
                             [this] { return virtual_time_; });
  service.platform().Deploy("vgg11", TinyVgg(11));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(Invoke(&service, "").status, 200);
  }
}

TEST_F(TenantGatewayTest, QuotaFaultForcesRejection) {
  OptimusHttpService service(&costs_, PlatformOpts(), GatewayOpts(),
                             [this] { return virtual_time_; });
  service.platform().Deploy("vgg11", TinyVgg(11));
  fault::ScopedFaults faults("tenant.quota_exhausted=once");
  // The bucket is full, but the injected fault forces the 429 path.
  EXPECT_EQ(Invoke(&service, "alice").status, 429);
  EXPECT_EQ(Invoke(&service, "alice").status, 200);
}

// Concurrent saturation: with the inflight cap at 2 and every invoke held
// open by the gateway.slow fault, most of a 12-thread volley must shed.
// Exactly-once accounting: every request is one 200 or one 429, the sheds
// counter matches the 429s, and the platform served exactly the 200s.
TEST(GatewayShedTest, ConcurrentSaturationShedsExactlyOnce) {
  AnalyticCostModel costs;
  PlatformOptions options;
  options.num_nodes = 1;
  options.containers_per_node = 2;
  GatewayOptions gateway;
  gateway.max_inflight_invokes = 2;
  gateway.max_batch_size = 1;
  gateway.slow_fault_delay = 0.05;
  OptimusHttpService service(&costs, options, gateway);
  service.platform().Deploy("vgg11", TinyVgg(11));
  // Pre-warm so concurrent invokes take the fast path.
  {
    HttpRequest request;
    request.method = "POST";
    request.path = "/invoke";
    request.query["name"] = "vgg11";
    request.body = "0.5,0.5";
    ASSERT_EQ(service.Handle(request).status, 200);
  }

  fault::ScopedFaults faults("gateway.slow=always");
  constexpr int kThreads = 12;
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> other{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      HttpRequest request;
      request.method = "POST";
      request.path = "/invoke";
      request.query["name"] = "vgg11";
      request.body = "0.5,0.5";
      const HttpResponse response = service.Handle(request);
      if (response.status == 200) {
        served.fetch_add(1);
      } else if (response.status == 429) {
        // Shed responses carry the JSON error envelope.
        EXPECT_NE(response.body.find("\"error\""), std::string::npos);
        EXPECT_NE(response.body.find("RESOURCE_EXHAUSTED"), std::string::npos);
        shed.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(served.load() + shed.load(), kThreads);
  EXPECT_GT(shed.load(), 0);
  // One shed increments the counter exactly once, and a shed request never
  // reaches the platform: successes reconcile with the start counters
  // (+1 pre-warm invoke).
  EXPECT_EQ(service.Sheds(), static_cast<size_t>(shed.load()));
  const PlatformCounters counters = service.platform().counters();
  EXPECT_EQ(counters.warm_starts + counters.transforms + counters.cold_starts,
            static_cast<size_t>(served.load()) + 1);
}

// --- Gateway: health and admin routes. --------------------------------------

TEST(GatewayAdminTest, HealthzReportsLifecycleAndDrainRouteRevokes) {
  AnalyticCostModel costs;
  PlatformOptions options;
  options.num_nodes = 2;
  options.containers_per_node = 2;
  double virtual_time = 0.0;
  OptimusHttpService service(&costs, options, GatewayOptions{},
                             [&virtual_time] { return virtual_time; });
  service.platform().Deploy("vgg11", TinyVgg(11));

  HttpRequest healthz;
  healthz.method = "GET";
  healthz.path = "/healthz";
  HttpResponse response = service.Handle(healthz);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.body.find("\"accepting\":2"), std::string::npos);

  // Drain node 1 with an explicit zero grace, then verify /healthz degrades.
  HttpRequest drain;
  drain.method = "POST";
  drain.path = "/nodes/1/drain";
  drain.query["grace"] = "0";
  response = service.Handle(drain);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(service.platform().NodeState(1), NodeLifecycle::kDown);

  response = service.Handle(healthz);
  EXPECT_NE(response.body.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(response.body.find("\"down\""), std::string::npos);

  // Revive over the admin route.
  HttpRequest revive;
  revive.method = "POST";
  revive.path = "/nodes/1/revive";
  response = service.Handle(revive);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(service.platform().NodeState(1), NodeLifecycle::kReviving);

  // Bad node ids: malformed -> 400, out of range -> 404.
  HttpRequest bad;
  bad.method = "POST";
  bad.path = "/nodes/x/drain";
  EXPECT_EQ(service.Handle(bad).status, 400);
  bad.path = "/nodes/7/drain";
  EXPECT_EQ(service.Handle(bad).status, 404);
}

// --- Simulator churn mirror. ------------------------------------------------

class SimChurnTest : public testing::Test {
 protected:
  SimChurnTest() {
    models_.push_back(TinyVgg(11));
    models_.push_back(TinyVgg(16));
    models_.push_back(TinyMobileNet());
    for (const Model& model : models_) {
      names_.push_back(model.name());
    }
    config_.num_nodes = 2;
    config_.containers_per_node = 2;
    config_.placement.kind = BalancerKind::kHash;
  }

  Trace SteadyTrace(double horizon, double gap) {
    Trace trace;
    double t = 0.0;
    while (t < horizon) {
      for (const std::string& name : names_) {
        trace.push_back({t, name});
        t += gap;
      }
    }
    return trace;
  }

  std::vector<Model> models_;
  std::vector<std::string> names_;
  SimConfig config_;
  AnalyticCostModel costs_;
};

TEST_F(SimChurnTest, ChurnServesEveryRequestAndAccounts) {
  const Trace trace = SteadyTrace(600.0, 20.0);
  config_.churn.push_back({150.0, 0, false, 0.0});   // Kill node 0.
  config_.churn.push_back({400.0, 0, true, 0.0});    // Revive it.
  const SimResult result = RunSimulation(models_, trace, config_, costs_);
  // Zero lost/duplicated: every arrival produced exactly one record.
  EXPECT_EQ(result.records.size(), trace.size());
  EXPECT_EQ(result.CountOf(StartType::kWarm) + result.CountOf(StartType::kTransform) +
                result.CountOf(StartType::kCold),
            trace.size());
  EXPECT_EQ(result.revocations, 1u);
  EXPECT_EQ(result.revives, 1u);
  // Kill + revive each republish the placement (mask swap + re-cluster).
  EXPECT_GE(result.churn_rebalances, 2u);
}

TEST_F(SimChurnTest, GracefulDrainReclaimsAfterWindow) {
  const Trace trace = SteadyTrace(600.0, 20.0);
  config_.churn.push_back({100.0, 1, false, 80.0});  // Drain with grace.
  const SimResult result = RunSimulation(models_, trace, config_, costs_);
  EXPECT_EQ(result.records.size(), trace.size());
  EXPECT_EQ(result.revocations, 1u);
  EXPECT_EQ(result.revives, 0u);
}

TEST_F(SimChurnTest, ChurnRunsAreDeterministic) {
  const Trace trace = SteadyTrace(500.0, 15.0);
  config_.churn.push_back({120.0, 0, false, 50.0});
  config_.churn.push_back({300.0, 0, true, 0.0});
  const SimResult a = RunSimulation(models_, trace, config_, costs_);
  const SimResult b = RunSimulation(models_, trace, config_, costs_);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].function, b.records[i].function);
    EXPECT_DOUBLE_EQ(a.records[i].ServiceTime(), b.records[i].ServiceTime());
    EXPECT_EQ(a.records[i].start, b.records[i].start);
  }
  EXPECT_EQ(a.revocations, b.revocations);
  EXPECT_EQ(a.reclaimed_containers, b.reclaimed_containers);
  EXPECT_EQ(a.rehomed_requests, b.rehomed_requests);
  EXPECT_EQ(a.churn_rebalances, b.churn_rebalances);
}

TEST_F(SimChurnTest, ChurnFreeConfigMatchesBaselineCounters) {
  const Trace trace = SteadyTrace(300.0, 30.0);
  const SimResult result = RunSimulation(models_, trace, config_, costs_);
  EXPECT_EQ(result.revocations, 0u);
  EXPECT_EQ(result.revives, 0u);
  EXPECT_EQ(result.reclaimed_containers, 0u);
  EXPECT_EQ(result.rehomed_requests, 0u);
  EXPECT_EQ(result.churn_rebalances, 0u);
}

}  // namespace
}  // namespace optimus
