// Reconstructs the paper's worked planning example (§4.4, Figures 9 & 10):
// a 5-operation source model and a 6-operation destination model whose
// transformation needs one Reshape, one Reduce, one Add, weight Replaces, and
// Edge fixes — and whose cost matrix has the Riesen-Bunke block structure of
// Figure 10.

#include <gtest/gtest.h>

#include "src/core/cost_matrix.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/runtime/loader.h"
#include "src/zoo/chain_builder.h"

namespace optimus {
namespace {

// Source (Model A): Input -> Conv 1x1x16 -> Conv 3x3x16 -> Conv 5x5x8 -> Output.
Model SourceModel() {
  Model model("paper_source", "example");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);
  chain.Append(OpKind::kConv2D, ConvAttrs(1, 3, 16));
  chain.Append(OpKind::kConv2D, ConvAttrs(3, 16, 16));
  chain.Append(OpKind::kConv2D, ConvAttrs(5, 16, 8));
  chain.Append(OpKind::kOutput);
  return model;
}

// Destination (Model B): Input -> Conv 5x5x16 (reshaped from 1x1) ->
// Conv 3x3x16 (kept) -> Activation (added) -> Output; the 5x5x8 conv is
// reduced. This mirrors Figure 9's mix of kept, reshaped, added, and removed
// operations.
Model DestModel() {
  Model model("paper_dest", "example");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);
  chain.Append(OpKind::kConv2D, ConvAttrs(5, 3, 16));
  chain.Append(OpKind::kConv2D, ConvAttrs(3, 16, 16));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kOutput);
  return model;
}

TEST(PaperExampleTest, CostMatrixHasFigure10Structure) {
  AnalyticCostModel costs;
  const Model source = SourceModel();
  const Model dest = DestModel();
  const TransformCostMatrix matrix = BuildCostMatrix(source, dest, costs);
  const size_t n = matrix.n();
  const size_t m = matrix.m();
  ASSERT_EQ(n, 5u);
  ASSERT_EQ(m, 5u);

  for (size_t i = 0; i < n; ++i) {
    const Operation& src_op = source.op(matrix.source_ids[i]);
    for (size_t j = 0; j < m; ++j) {
      const Operation& dst_op = dest.op(matrix.dest_ids[j]);
      if (src_op.kind == dst_op.kind) {
        // Top-left block: substitution cost finite for same kinds...
        EXPECT_LT(matrix.costs[i][j], kForbiddenCost);
      } else {
        // ...and forbidden across kinds.
        EXPECT_GE(matrix.costs[i][j], kForbiddenCost);
      }
    }
    // Top-right block: Reduce on the diagonal only.
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        EXPECT_DOUBLE_EQ(matrix.costs[i][m + j], costs.ReduceCost());
      } else {
        EXPECT_GE(matrix.costs[i][m + j], kForbiddenCost);
      }
    }
  }
  // Bottom-left block: Add on the diagonal only; bottom-right all zero.
  for (size_t j = 0; j < m; ++j) {
    const Operation& dst_op = dest.op(matrix.dest_ids[j]);
    EXPECT_DOUBLE_EQ(matrix.costs[n + j][j], costs.AddCost(dst_op.kind, dst_op.attrs));
    for (size_t i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(matrix.costs[n + j][m + i], 0.0);
    }
  }
}

TEST(PaperExampleTest, OptimalPlanUsesAllFiveMetaOperators) {
  AnalyticCostModel costs;
  const Model source = SourceModel();
  const Model dest = DestModel();
  const TransformPlan plan = PlanTransform(source, dest, costs, PlannerKind::kBasic);
  // Keep the two matching convs (one reshaped 1x1 -> 5x5), drop the third,
  // add the activation, rewire.
  EXPECT_EQ(plan.CountOf(MetaOpKind::kReplace), 2);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kReshape), 1);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kReduce), 1);
  EXPECT_EQ(plan.CountOf(MetaOpKind::kAdd), 1);
  EXPECT_GT(plan.CountOf(MetaOpKind::kEdge), 0);
}

TEST(PaperExampleTest, BasicGroupAndBruteForceAgree) {
  AnalyticCostModel costs;
  const Model source = SourceModel();
  const Model dest = DestModel();
  // n + m = 10 exceeds the brute-force limit of 9, so compare Basic vs Group
  // (and check Basic <= Group since Basic is optimal).
  const TransformPlan basic = PlanTransform(source, dest, costs, PlannerKind::kBasic);
  const TransformPlan group = PlanTransform(source, dest, costs, PlannerKind::kGroup);
  EXPECT_LE(basic.total_cost, group.total_cost + 1e-12);
  // For this example the sequential heuristic is exactly optimal.
  EXPECT_NEAR(basic.total_cost, group.total_cost, 1e-9);
}

TEST(PaperExampleTest, ExecutionFollowsTheNarrative) {
  // §4.4: "reshape Operation 2 ... delete Operation 3 ... add Operation 6 ...
  // reassign weights ... use Edge to modify the data flows" — after which the
  // container holds the destination model.
  AnalyticCostModel costs;
  Loader loader(&costs);
  ModelInstance container = loader.Instantiate(SourceModel(), 1);
  const ModelInstance dest = loader.Instantiate(DestModel(), 2);
  const TransformPlan plan =
      PlanTransform(container.model, dest.model, costs, PlannerKind::kBasic);
  const TransformExecutionStats stats = ExecutePlan(&container, dest.model, plan);
  EXPECT_TRUE(container.model.Identical(dest.model));
  EXPECT_EQ(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kReshape)], 1);
  EXPECT_EQ(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kReduce)], 1);
  EXPECT_EQ(stats.count_by_kind[static_cast<size_t>(MetaOpKind::kAdd)], 1);
}

TEST(PaperExampleTest, TransformBeatsScratchLoad) {
  AnalyticCostModel costs;
  const TransformPlan plan =
      PlanTransform(SourceModel(), DestModel(), costs, PlannerKind::kBasic);
  EXPECT_LT(plan.total_cost, costs.ScratchLoadCost(DestModel()));
}

}  // namespace
}  // namespace optimus
