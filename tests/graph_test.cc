#include "src/graph/model.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace optimus {
namespace {

TEST(OpKindTest, NamesRoundTrip) {
  for (int i = 0; i < kNumOpKinds; ++i) {
    const OpKind kind = static_cast<OpKind>(i);
    EXPECT_EQ(OpKindFromName(OpKindName(kind)), kind);
  }
}

TEST(OpKindTest, WeightedKinds) {
  EXPECT_TRUE(OpKindHasWeights(OpKind::kConv2D));
  EXPECT_TRUE(OpKindHasWeights(OpKind::kDense));
  EXPECT_TRUE(OpKindHasWeights(OpKind::kEmbedding));
  EXPECT_TRUE(OpKindHasWeights(OpKind::kAttentionQuery));
  EXPECT_FALSE(OpKindHasWeights(OpKind::kActivation));
  EXPECT_FALSE(OpKindHasWeights(OpKind::kMaxPool));
  EXPECT_FALSE(OpKindHasWeights(OpKind::kAdd));
  EXPECT_FALSE(OpKindHasWeights(OpKind::kLogit));
}

TEST(OpAttributesTest, WeightShapes) {
  OpAttributes conv;
  conv.kernel_h = 3;
  conv.kernel_w = 3;
  conv.in_channels = 64;
  conv.out_channels = 128;
  const auto shapes = WeightShapesFor(OpKind::kConv2D, conv);
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0], Shape({3, 3, 64, 128}));
  EXPECT_EQ(shapes[1], Shape({128}));
  EXPECT_EQ(WeightElementsFor(OpKind::kConv2D, conv), 3 * 3 * 64 * 128 + 128);
  EXPECT_EQ(WeightBytesFor(OpKind::kConv2D, conv),
            (3 * 3 * 64 * 128 + 128) * static_cast<int64_t>(sizeof(float)));
}

TEST(OpAttributesTest, WeightFreeKindsHaveNoShapes) {
  EXPECT_TRUE(WeightShapesFor(OpKind::kActivation, {}).empty());
  EXPECT_TRUE(WeightShapesFor(OpKind::kMaxPool, {}).empty());
  EXPECT_EQ(WeightElementsFor(OpKind::kAdd, {}), 0);
}

TEST(OperationTest, InitializeWeightsMatchesDeclaredShapes) {
  Operation op;
  op.id = 0;
  op.kind = OpKind::kDense;
  op.attrs.in_channels = 8;
  op.attrs.out_channels = 4;
  Rng rng(1);
  op.InitializeWeights(&rng);
  ASSERT_EQ(op.weights.size(), 2u);
  EXPECT_EQ(op.weights[0].shape(), Shape({8, 4}));
  EXPECT_EQ(op.weights[1].shape(), Shape({4}));
  EXPECT_EQ(op.WeightElements(), 36);
}

TEST(OperationTest, SameStructureIgnoresWeights) {
  Operation a;
  a.kind = OpKind::kConv2D;
  a.attrs = ConvAttrs(3, 4, 8);
  Operation b = a;
  Rng rng(2);
  a.InitializeWeights(&rng);
  b.InitializeWeights(&rng);
  EXPECT_TRUE(a.SameStructure(b));
  EXPECT_FALSE(a.Identical(b));  // Different random draws.
}

TEST(ModelTest, AddAndRemoveOps) {
  Model model("m", "test");
  const OpId a = model.AddOp(OpKind::kInput);
  const OpId b = model.AddOp(OpKind::kActivation, ReluAttrs());
  model.AddEdge(a, b);
  EXPECT_EQ(model.NumOps(), 2u);
  EXPECT_TRUE(model.HasEdge(a, b));
  model.RemoveOp(b);
  EXPECT_EQ(model.NumOps(), 1u);
  EXPECT_EQ(model.NumEdges(), 0u);  // Incident edge removed too.
}

TEST(ModelTest, AddOpWithIdRejectsDuplicates) {
  Model model("m", "test");
  Operation op;
  op.id = 5;
  op.kind = OpKind::kAdd;
  model.AddOpWithId(op);
  EXPECT_THROW(model.AddOpWithId(op), std::invalid_argument);
  // Fresh ids continue after the explicit one.
  EXPECT_GT(model.AddOp(OpKind::kAdd), 5);
}

TEST(ModelTest, TopologicalOrderLinearChain) {
  Model model = SmallChain("chain", 3, 8);
  const auto order = model.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(model.op(order[0]).kind, OpKind::kInput);
  EXPECT_EQ(model.op(order[3]).kind, OpKind::kOutput);
}

TEST(ModelTest, TopologicalOrderDetectsCycle) {
  Model model("cyclic", "test");
  const OpId a = model.AddOp(OpKind::kAdd);
  const OpId b = model.AddOp(OpKind::kAdd);
  model.AddEdge(a, b);
  model.AddEdge(b, a);
  EXPECT_THROW(model.TopologicalOrder(), std::runtime_error);
}

TEST(ModelTest, ValidateCatchesDanglingEdge) {
  Model model("bad", "test");
  const OpId a = model.AddOp(OpKind::kInput);
  const OpId b = model.AddOp(OpKind::kOutput);
  model.AddEdge(a, b);
  model.Validate();
  // Force a dangling edge.
  Model broken = model;
  broken.AddEdge(a, 99);
  EXPECT_THROW(broken.Validate(), std::runtime_error);
}

TEST(ModelTest, ValidateCatchesWrongWeightShape) {
  Model model("bad_weights", "test");
  const OpId id = model.AddOp(OpKind::kDense, DenseAttrs(4, 4));
  model.mutable_op(id).weights.emplace_back(Shape({2, 2}));
  model.mutable_op(id).weights.emplace_back(Shape({4}));
  EXPECT_THROW(model.Validate(), std::runtime_error);
}

TEST(ModelTest, PredecessorsAndSuccessors) {
  Model model("branchy", "test");
  const OpId in = model.AddOp(OpKind::kInput);
  const OpId left = model.AddOp(OpKind::kActivation, ReluAttrs());
  const OpId right = model.AddOp(OpKind::kActivation, ReluAttrs());
  const OpId join = model.AddOp(OpKind::kAdd);
  model.AddEdge(in, left);
  model.AddEdge(in, right);
  model.AddEdge(left, join);
  model.AddEdge(right, join);
  EXPECT_EQ(model.Successors(in).size(), 2u);
  EXPECT_EQ(model.Predecessors(join).size(), 2u);
  EXPECT_TRUE(model.Predecessors(in).empty());
}

TEST(ModelTest, ParamCountMatchesWeightShapes) {
  Model model("counted", "test");
  model.AddOp(OpKind::kConv2D, ConvAttrs(3, 4, 8));
  model.AddOp(OpKind::kActivation, ReluAttrs());
  EXPECT_EQ(model.ParamCount(), 3 * 3 * 4 * 8 + 8);
  EXPECT_EQ(model.WeightBytes(), model.ParamCount() * 4);
  EXPECT_EQ(model.NumWeightedOps(), 1u);
}

TEST(ModelTest, StructuralEqualityIgnoresWeights) {
  Model a = SmallChain("a", 3, 8);
  Model b = SmallChain("b", 3, 8);
  EXPECT_TRUE(a.StructurallyEqual(b));
  Rng rng(1);
  for (const OpId id : a.OpIds()) {
    a.mutable_op(id).InitializeWeights(&rng);
  }
  for (const OpId id : b.OpIds()) {
    b.mutable_op(id).InitializeWeights(&rng);
  }
  EXPECT_TRUE(a.StructurallyEqual(b));
  EXPECT_FALSE(a.Identical(b));
}

TEST(ModelTest, StructuralEqualityDetectsAttrDifference) {
  const Model a = SmallChain("a", 3, 8);
  const Model b = SmallChain("b", 5, 8);
  EXPECT_FALSE(a.StructurallyEqual(b));
}

TEST(ModelTest, IdenticalAfterCopy) {
  Model a = SmallChain("a", 3, 8);
  Rng rng(1);
  for (const OpId id : a.OpIds()) {
    a.mutable_op(id).InitializeWeights(&rng);
  }
  const Model b = a;
  EXPECT_TRUE(a.Identical(b));
}

TEST(ModelTest, FingerprintSensitiveToStructure) {
  const Model a = SmallChain("a", 3, 8);
  const Model b = SmallChain("b", 3, 8);
  const Model c = SmallChain("c", 5, 8);
  EXPECT_EQ(a.StructureFingerprint(), b.StructureFingerprint());
  EXPECT_NE(a.StructureFingerprint(), c.StructureFingerprint());
}

TEST(ModelTest, FingerprintSensitiveToEdges) {
  Model a("a", "test");
  const OpId x = a.AddOp(OpKind::kAdd);
  const OpId y = a.AddOp(OpKind::kAdd);
  Model b = a;
  a.AddEdge(x, y);
  EXPECT_NE(a.StructureFingerprint(), b.StructureFingerprint());
}

}  // namespace
}  // namespace optimus
