#include "src/core/platform.h"

#include <gtest/gtest.h>

#include "src/runtime/inference.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

class PlatformTest : public testing::Test {
 protected:
  PlatformTest() : platform_(&costs_, DefaultOptions()) {}

  static PlatformOptions DefaultOptions() {
    PlatformOptions options;
    options.num_nodes = 1;
    options.containers_per_node = 2;
    return options;
  }

  AnalyticCostModel costs_;
  OptimusPlatform platform_;
  std::vector<float> input_ = std::vector<float>(8, 0.5f);
};

TEST_F(PlatformTest, DeployRejectsDuplicates) {
  platform_.Deploy("vgg", TinyVgg(11));
  EXPECT_THROW(platform_.Deploy("vgg", TinyVgg(16)), std::invalid_argument);
  EXPECT_EQ(platform_.NumFunctions(), 1u);
}

TEST_F(PlatformTest, InvokeUnknownFunctionIsTypedNotFound) {
  try {
    platform_.Invoke("nope", input_, 0.0);
    FAIL() << "expected OptimusError";
  } catch (const OptimusError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kNotFound);
  }
  InvokeResult result;
  const Status status = platform_.TryInvoke("nope", input_, 0.0, &result);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(platform_.counters().failed_invokes, 2u);
}

TEST_F(PlatformTest, StaleTimestampsClampForward) {
  // Concurrent callers race between reading their timestamp and reaching the
  // platform, so an older `now` is clamped to the CAS-max clock, not rejected.
  platform_.Deploy("vgg", TinyVgg(11));
  platform_.Invoke("vgg", input_, 100.0);
  const InvokeResult stale = platform_.Invoke("vgg", input_, 50.0);
  // Served as if it arrived at t=100: the container is still warm.
  EXPECT_EQ(stale.start, StartType::kWarm);
  // The clock did not move backwards: at t=100+keep_alive the container has
  // expired (had the clamp regressed the clock, it would still be live).
  const InvokeResult late = platform_.Invoke("vgg", input_, 100.0 + 600.0);
  EXPECT_EQ(late.start, StartType::kCold);
}

TEST_F(PlatformTest, ColdThenWarm) {
  platform_.Deploy("vgg", TinyVgg(11));
  const InvokeResult first = platform_.Invoke("vgg", input_, 0.0);
  EXPECT_EQ(first.start, StartType::kCold);
  const InvokeResult second = platform_.Invoke("vgg", input_, 10.0);
  EXPECT_EQ(second.start, StartType::kWarm);
  // Same resident weights -> identical outputs.
  EXPECT_EQ(first.output, second.output);
  EXPECT_LT(second.estimated_latency, first.estimated_latency);
  EXPECT_EQ(platform_.WarmStarts(), 1u);
  EXPECT_EQ(platform_.ColdStarts(), 1u);
}

TEST_F(PlatformTest, KeepAliveExpiryForcesCold) {
  platform_.Deploy("vgg", TinyVgg(11));
  platform_.Invoke("vgg", input_, 0.0);
  const InvokeResult late = platform_.Invoke("vgg", input_, 1000.0);  // > 600s keep-alive.
  EXPECT_EQ(late.start, StartType::kCold);
  EXPECT_EQ(platform_.NumLiveContainers(), 1u);
}

TEST_F(PlatformTest, TransformationOnFullNode) {
  platform_.Deploy("vgg11", TinyVgg(11));
  platform_.Deploy("vgg16", TinyVgg(16));
  platform_.Deploy("vgg19", TinyVgg(19));
  // Fill both slots.
  platform_.Invoke("vgg11", input_, 0.0);
  platform_.Invoke("vgg16", input_, 1.0);
  // After the idle threshold, a third function must repurpose a donor.
  const InvokeResult result = platform_.Invoke("vgg19", input_, 120.0);
  EXPECT_EQ(result.start, StartType::kTransform);
  EXPECT_FALSE(result.donor_function.empty());
  EXPECT_EQ(platform_.Transforms(), 1u);
  EXPECT_EQ(platform_.NumLiveContainers(), 2u);
}

TEST_F(PlatformTest, FreeSlotPreferredOverDonor) {
  platform_.Deploy("vgg11", TinyVgg(11));
  platform_.Deploy("vgg16", TinyVgg(16));
  platform_.Invoke("vgg11", input_, 0.0);
  // One slot still free: cold start rather than consuming vgg11's container.
  const InvokeResult result = platform_.Invoke("vgg16", input_, 120.0);
  EXPECT_EQ(result.start, StartType::kCold);
  // vgg11 stays warm.
  EXPECT_EQ(platform_.Invoke("vgg11", input_, 121.0).start, StartType::kWarm);
}

TEST_F(PlatformTest, TransformedContainerServesDestinationFunction) {
  platform_.Deploy("vgg11", TinyVgg(11));
  platform_.Deploy("vgg16", TinyVgg(16));
  platform_.Deploy("vgg19", TinyVgg(19));
  platform_.Invoke("vgg11", input_, 0.0);
  platform_.Invoke("vgg16", input_, 1.0);
  const InvokeResult transformed = platform_.Invoke("vgg19", input_, 120.0);
  ASSERT_EQ(transformed.start, StartType::kTransform);

  // Reference output: what a dedicated scratch load of vgg19 would produce.
  AnalyticCostModel costs;
  OptimusPlatform reference(&costs, DefaultOptions());
  reference.Deploy("vgg19", TinyVgg(19));
  const InvokeResult scratch = reference.Invoke("vgg19", input_, 0.0);
  EXPECT_EQ(transformed.output, scratch.output);
}

TEST_F(PlatformTest, DeployFileRoundTrip) {
  const ModelFile file = SerializeModel(TinyMobileNet());
  platform_.DeployFile("mobilenet", file);
  const InvokeResult result = platform_.Invoke("mobilenet", input_, 0.0);
  EXPECT_EQ(result.output.size(), 1000u);
}

TEST_F(PlatformTest, PlanCacheWarmedAtDeploy) {
  platform_.Deploy("vgg11", TinyVgg(11));
  platform_.Deploy("vgg16", TinyVgg(16));
  EXPECT_TRUE(platform_.plan_cache().Contains("vgg11", "vgg16"));
  EXPECT_TRUE(platform_.plan_cache().Contains("vgg16", "vgg11"));
}

TEST_F(PlatformTest, LazyPlanningOptionSkipsWarmup) {
  PlatformOptions options = DefaultOptions();
  options.warm_plan_cache = false;
  AnalyticCostModel costs;
  OptimusPlatform lazy(&costs, options);
  lazy.Deploy("vgg11", TinyVgg(11));
  lazy.Deploy("vgg16", TinyVgg(16));
  EXPECT_EQ(lazy.plan_cache().Size(), 0u);
}

TEST_F(PlatformTest, MultiNodeRouting) {
  PlatformOptions options = DefaultOptions();
  options.num_nodes = 3;
  AnalyticCostModel costs;
  OptimusPlatform cluster(&costs, options);
  cluster.Deploy("vgg11", TinyVgg(11));
  cluster.Deploy("bert", TinyBert(2, 64));
  const InvokeResult a = cluster.Invoke("vgg11", input_, 0.0);
  const InvokeResult b = cluster.Invoke("bert", input_, 1.0);
  EXPECT_GE(a.node, 0);
  EXPECT_LT(a.node, 3);
  // Routing is sticky per function.
  EXPECT_EQ(cluster.Invoke("vgg11", input_, 2.0).node, a.node);
  (void)b;
}

TEST_F(PlatformTest, SafeguardCountsAsColdButReusesContainer) {
  // A trivial destination makes transformation lose to a scratch load.
  Model trivial("trivial_struct", "test");
  const OpId in = trivial.AddOp(OpKind::kInput);
  const OpId out = trivial.AddOp(OpKind::kOutput);
  trivial.AddEdge(in, out);

  platform_.Deploy("vgg16", TinyVgg(16));
  platform_.Deploy("vgg19", TinyVgg(19));
  platform_.Deploy("trivial", trivial);
  platform_.Invoke("vgg16", input_, 0.0);
  platform_.Invoke("vgg19", input_, 1.0);
  const InvokeResult result = platform_.Invoke("trivial", input_, 120.0);
  EXPECT_EQ(result.start, StartType::kCold);        // Safeguard path.
  EXPECT_EQ(platform_.NumLiveContainers(), 2u);     // No new container.
  EXPECT_FALSE(result.donor_function.empty());
}

TEST_F(PlatformTest, BatchWarmPathTakesOneLockForWholeBatch) {
  platform_.Deploy("vgg", TinyVgg(11));
  platform_.Invoke("vgg", input_, 0.0);  // Warm the container.

  const uint64_t locks_before = platform_.NodeLockAcquisitions();
  const size_t warm_before = platform_.WarmStarts();
  std::vector<const std::vector<float>*> inputs(4, &input_);
  std::vector<InvokeResult> results;
  const std::vector<Status> statuses = platform_.TryInvokeBatch("vgg", inputs, 10.0, &results);

  ASSERT_EQ(statuses.size(), 4u);
  ASSERT_EQ(results.size(), 4u);
  for (size_t i = 0; i < statuses.size(); ++i) {
    EXPECT_TRUE(statuses[i].ok()) << statuses[i].message();
    EXPECT_EQ(results[i].start, StartType::kWarm);
    EXPECT_EQ(results[i].output, results[0].output);
  }
  EXPECT_EQ(platform_.WarmStarts(), warm_before + 4);
  // The whole warm batch rides one routing decision and one node lock — the
  // per-dispatch overhead batching exists to amortize.
  EXPECT_EQ(platform_.NodeLockAcquisitions(), locks_before + 1);
}

TEST_F(PlatformTest, BatchFallsBackPerRequestWhenNotWarm) {
  platform_.Deploy("vgg", TinyVgg(11));
  std::vector<const std::vector<float>*> inputs(2, &input_);
  std::vector<InvokeResult> results;
  const std::vector<Status> statuses = platform_.TryInvokeBatch("vgg", inputs, 0.0, &results);
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_TRUE(statuses[1].ok());
  // First request cold-starts the container; the second is served warm by the
  // per-request fallback.
  EXPECT_EQ(results[0].start, StartType::kCold);
  EXPECT_EQ(results[1].start, StartType::kWarm);
}

TEST_F(PlatformTest, BatchUnknownFunctionFailsEveryRequest) {
  std::vector<const std::vector<float>*> inputs(3, &input_);
  std::vector<InvokeResult> results;
  const std::vector<Status> statuses = platform_.TryInvokeBatch("nope", inputs, 0.0, &results);
  ASSERT_EQ(statuses.size(), 3u);
  for (const Status& status : statuses) {
    EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  }
  EXPECT_EQ(platform_.counters().failed_invokes, 3u);
}

TEST_F(PlatformTest, ArenaRecycledAcrossContainerGenerations) {
  // A dead container banks its arena as a node spare; the next cold start
  // reuses it instead of allocating fresh slabs (DESIGN.md §14).
  NodePool pool(/*num_nodes=*/1, /*containers_per_node=*/2);
  AnalyticCostModel costs;
  Loader loader(&costs);
  {
    NodePool::LockedNode node = pool.Lock(0);
    EXPECT_EQ(node.SpareArenas(), 0u);
    RealContainer container;
    container.id = pool.AllocateId();
    container.function = "vgg";
    container.instance =
        loader.Instantiate(TinyVgg(11), /*weight_seed=*/1, nullptr, nullptr, node.AcquireArena());
    node.Adopt(std::move(container));
    node.ReapExpired(/*now=*/1000.0, /*keep_alive=*/1.0);  // Kill the container.
    EXPECT_EQ(node.containers().size(), 0u);
    EXPECT_EQ(node.SpareArenas(), 1u);  // Arena banked, not freed.
  }
  {
    NodePool::LockedNode node = pool.Lock(0);
    const std::shared_ptr<TensorArena> recycled = node.AcquireArena();
    EXPECT_EQ(node.SpareArenas(), 0u);
    ASSERT_NE(recycled, nullptr);
    // The recycled arena keeps its reservation (slabs survive container
    // churn) but starts a fresh generation with nothing handed out.
    EXPECT_GT(recycled->elements_reserved(), 0);
    EXPECT_EQ(recycled->elements_used(), 0);
  }
}

}  // namespace
}  // namespace optimus
