// Tests for the concurrency-contract layer (src/common/sync.h, DESIGN.md §15):
// the annotated Mutex/SharedMutex/CondVar wrappers and the debug lock-rank
// deadlock validator — rank-inversion detection, acquired-after cycle
// detection, recursive-acquisition and unheld-release reporting, and held-set
// hygiene across exceptions and condvar waits.
//
// In Release (validator compiled out) the dynamic checks vanish; the suite
// then pins the zero-cost contract instead: the wrappers must be
// layout-identical to the raw std primitives.

#include "src/common/sync.h"

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace optimus {
namespace {

#if OPTIMUS_LOCK_RANK_DEBUG

// Recording handler: violations land in a buffer instead of aborting, and the
// offending acquisition proceeds (the validator's report-and-continue path).
// The buffer is global because handlers are plain function pointers.
struct Recorded {
  std::string kind;
  std::string message;
};
std::vector<Recorded>* g_recorded = nullptr;

void RecordViolation(const lockrank::Violation& violation) {
  if (g_recorded != nullptr) {
    g_recorded->push_back({violation.kind, violation.message});
  }
}

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_recorded = &recorded_;
    previous_ = lockrank::SetViolationHandler(&RecordViolation);
    lockrank::ResetGraphForTest();
  }

  void TearDown() override {
    lockrank::SetViolationHandler(previous_);
    g_recorded = nullptr;
    lockrank::ResetGraphForTest();
    EXPECT_EQ(lockrank::HeldLockCount(), 0u)
        << "a test leaked a held-set entry; later tests would misreport";
  }

  bool Saw(const std::string& kind) const {
    for (const Recorded& violation : recorded_) {
      if (violation.kind == kind) {
        return true;
      }
    }
    return false;
  }

  std::vector<Recorded> recorded_;
  lockrank::Handler previous_ = nullptr;
};

TEST_F(LockRankTest, IncreasingRankOrderIsClean) {
  Mutex low(LockRank::kRepository, "test.low");
  Mutex high(LockRank::kNode, "test.high");
  {
    MutexLock a(low);
    MutexLock b(high);
    EXPECT_EQ(lockrank::HeldLockCount(), 2u);
  }
  EXPECT_TRUE(recorded_.empty());
}

TEST_F(LockRankTest, RankInversionIsReportedWithBothStacks) {
  Mutex low(LockRank::kPlanCacheShard, "test.shard");
  Mutex high(LockRank::kPlanCacheEntry, "test.entry");
  {
    MutexLock a(high);  // rank 60 first...
    MutexLock b(low);   // ...then rank 50: inversion.
  }
  ASSERT_EQ(recorded_.size(), 1u);
  EXPECT_EQ(recorded_[0].kind, "rank-inversion");
  EXPECT_NE(recorded_[0].message.find("test.entry"), std::string::npos);
  EXPECT_NE(recorded_[0].message.find("test.shard"), std::string::npos);
  EXPECT_NE(recorded_[0].message.find("held lock acquired at:"), std::string::npos);
  EXPECT_NE(recorded_[0].message.find("offending acquisition:"), std::string::npos);
}

TEST_F(LockRankTest, SeededTwoLockInversionAcrossThreadsClosesCycle) {
  // The classic A→B / B→A deadlock seed, expressed with two same-rank locks
  // so the rank check alone cannot see it: thread 1 records edge A→B, then
  // this thread's B→A closes the cycle in the acquired-after graph.
  Mutex a(LockRank::kNode, "test.a");
  Mutex b(LockRank::kNode, "test.b");
  std::thread t([&] {
    MutexLock hold_a(a);
    MutexLock then_b(b);  // Records A→B.
  });
  t.join();
  {
    MutexLock hold_b(b);
    MutexLock then_a(a);  // B→A: cycle.
  }
  ASSERT_TRUE(Saw("lock-cycle"));
}

TEST_F(LockRankTest, ThreeMutexCycleIsDetected) {
  // A→B and B→C are recorded as legal edges; C→A closes a cycle spanning
  // three instances — exactly what pairwise ordering checks miss.
  Mutex a(LockRank::kNode, "test.cycle_a");
  Mutex b(LockRank::kNode, "test.cycle_b");
  Mutex c(LockRank::kNode, "test.cycle_c");
  {
    MutexLock la(a);
    MutexLock lb(b);  // A→B
  }
  EXPECT_TRUE(recorded_.empty());
  {
    MutexLock lb(b);
    MutexLock lc(c);  // B→C
  }
  EXPECT_TRUE(recorded_.empty());
  {
    MutexLock lc(c);
    MutexLock la(a);  // C→A closes A→B→C→A.
  }
  ASSERT_EQ(recorded_.size(), 1u);
  EXPECT_EQ(recorded_[0].kind, "lock-cycle");
  // The report names the cycle-closing pair and at least one recorded edge.
  EXPECT_NE(recorded_[0].message.find("test.cycle_c"), std::string::npos);
  EXPECT_NE(recorded_[0].message.find("test.cycle_a"), std::string::npos);
  EXPECT_NE(recorded_[0].message.find("edge"), std::string::npos);
}

TEST_F(LockRankTest, RecursiveAcquisitionIsReported) {
  Mutex mu(LockRank::kNode, "test.recursive");
  MutexLock lock(mu);
  // Drive the pre-acquire check directly: re-locking the raw mutex for real
  // would deadlock this thread — which is exactly the hang the check turns
  // into a report *before* blocking.
  lockrank::internal::PreAcquire(&mu, static_cast<uint32_t>(LockRank::kNode), "test.recursive");
  EXPECT_TRUE(Saw("recursive-acquisition"));
}

TEST_F(LockRankTest, UnheldReleaseIsReported) {
  Mutex mu(LockRank::kNode, "test.unheld");
  mu.native().lock();  // Acquire behind the validator's back...
  mu.Unlock();         // ...so this release finds no held-set entry.
  EXPECT_TRUE(Saw("unheld-release"));
}

TEST_F(LockRankTest, HeldSetUnwindsAcrossExceptions) {
  Mutex mu(LockRank::kNode, "test.unwind");
  try {
    MutexLock lock(mu);
    EXPECT_EQ(lockrank::HeldLockCount(), 1u);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(lockrank::HeldLockCount(), 0u);
  // The lock is actually free again: re-acquiring is clean.
  MutexLock lock(mu);
  EXPECT_TRUE(recorded_.empty());
}

TEST_F(LockRankTest, UnrankedLocksAreExemptFromOrderChecks) {
  Mutex ranked(LockRank::kNode, "test.ranked");
  Mutex unranked;  // Tests/scaffolding default.
  {
    MutexLock a(ranked);
    MutexLock b(unranked);  // Unranked after ranked: fine.
  }
  {
    MutexLock b(unranked);
    MutexLock a(ranked);  // Ranked after unranked: also fine.
  }
  EXPECT_TRUE(recorded_.empty());
}

TEST_F(LockRankTest, TryLockSkipsOrderChecksButTracksHeld) {
  Mutex low(LockRank::kRepository, "test.try_low");
  Mutex high(LockRank::kNode, "test.try_high");
  MutexLock hold(high);
  // A try-lock against the order is allowed (it cannot block)...
  ASSERT_TRUE(low.TryLock());
  EXPECT_TRUE(recorded_.empty());
  EXPECT_EQ(lockrank::HeldLockCount(), 2u);
  low.Unlock();
}

TEST_F(LockRankTest, SharedMutexReadersParticipateInOrdering) {
  SharedMutex registry(LockRank::kFaultRegistry, "test.registry");
  Mutex point(LockRank::kFaultPoint, "test.point");
  {
    ReaderLock shared(registry);
    MutexLock inner(point);  // registry(shared) → point: the fault.cc order.
  }
  EXPECT_TRUE(recorded_.empty());
  {
    MutexLock inner(point);
    ReaderLock shared(registry);  // Reverse order: inversion, shared or not.
  }
  EXPECT_TRUE(Saw("rank-inversion"));
}

TEST_F(LockRankTest, CondVarWaitKeepsHeldSetEntry) {
  Mutex mu(LockRank::kThreadPool, "test.cv");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);
      // Re-acquired: the held-set still records exactly this lock.
      EXPECT_EQ(lockrank::HeldLockCount(), 1u);
    }
  }
  waker.join();
  EXPECT_EQ(lockrank::HeldLockCount(), 0u);
  EXPECT_TRUE(recorded_.empty());
}

TEST_F(LockRankTest, MutexLockUnlockRelockRoundTrip) {
  // The condvar-loop idiom RebalancerLoop and InvokeBatched rely on.
  Mutex mu(LockRank::kRebalance, "test.relock");
  MutexLock lock(mu);
  EXPECT_EQ(lockrank::HeldLockCount(), 1u);
  lock.Unlock();
  EXPECT_EQ(lockrank::HeldLockCount(), 0u);
  lock.Lock();
  EXPECT_EQ(lockrank::HeldLockCount(), 1u);
}

#else  // !OPTIMUS_LOCK_RANK_DEBUG

// Release contract: the wrappers are free — layout-identical to the raw std
// primitives (no rank/name members) and the validator API collapses to stubs.
static_assert(sizeof(Mutex) == sizeof(lockrank::internal::RawMutex),
              "Release Mutex must be layout-identical to the raw mutex");
static_assert(sizeof(SharedMutex) == sizeof(lockrank::internal::RawSharedMutex),
              "Release SharedMutex must be layout-identical to the raw shared mutex");
static_assert(sizeof(CondVar) == sizeof(lockrank::internal::RawCondVar),
              "CondVar must be layout-identical to the raw condition variable");

TEST(SyncReleaseTest, ValidatorApiIsStubbedOut) {
  EXPECT_EQ(lockrank::SetViolationHandler(nullptr), nullptr);
  EXPECT_EQ(lockrank::HeldLockCount(), 0u);
  lockrank::ResetGraphForTest();  // No-op, must link.
}

#endif  // OPTIMUS_LOCK_RANK_DEBUG

// Smoke coverage that must hold in every configuration.
TEST(SyncSmokeTest, WrappersProtectSharedState) {
  Mutex mu(LockRank::kNode, "smoke.counter");
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 4000);
}

TEST(SyncSmokeTest, ReaderWriterExclusion) {
  SharedMutex mu(LockRank::kRepository, "smoke.rw");
  int value = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        WriterLock lock(mu);
        ++value;
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ReaderLock lock(mu);
        EXPECT_GE(value, 0);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(value, 1000);
}

}  // namespace
}  // namespace optimus
