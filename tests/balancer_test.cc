#include "src/balancer/balancer.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace optimus {
namespace {

class BalancerTest : public testing::Test {
 protected:
  std::vector<Model> SimilarAndDissimilarModels() {
    // Two structural families: VGG-like and BERT-like.
    std::vector<Model> models;
    models.push_back(TinyVgg(11));
    models.push_back(TinyVgg(16));
    models.push_back(TinyVgg(19));
    models.push_back(TinyBert(2, 64));
    models.push_back(TinyBert(4, 128));
    Model extra = TinyBert(2, 128);
    models.push_back(extra);
    return models;
  }

  AnalyticCostModel costs_;
};

TEST_F(BalancerTest, HashPlacementDeterministicAndInRange) {
  const auto models = SimilarAndDissimilarModels();
  BalancerOptions options;
  options.kind = BalancerKind::kHash;
  const Placement a = PlaceFunctions(models, 3, {}, costs_, options);
  const Placement b = PlaceFunctions(models, 3, {}, costs_, options);
  EXPECT_EQ(a, b);
  for (const auto& [name, node] : a) {
    EXPECT_GE(node, 0);
    EXPECT_LT(node, 3);
  }
  EXPECT_EQ(a.size(), models.size());
}

TEST_F(BalancerTest, LoadBasedPlacementBalancesDemand) {
  const auto models = SimilarAndDissimilarModels();
  std::map<std::string, DemandSeries> history;
  // One hot function, the rest cold.
  history[models[0].name()] = {100.0, 100.0};
  for (size_t i = 1; i < models.size(); ++i) {
    history[models[i].name()] = {1.0, 1.0};
  }
  BalancerOptions options;
  options.kind = BalancerKind::kLoadBased;
  const Placement placement = PlaceFunctions(models, 2, history, costs_, options);
  // The hot function gets a node; at most one cold one joins it while the
  // other node takes the rest.
  const int hot_node = placement.at(models[0].name());
  int on_hot_node = 0;
  for (const auto& [name, node] : placement) {
    if (node == hot_node) {
      ++on_hot_node;
    }
  }
  EXPECT_LE(on_hot_node, 2);
}

TEST_F(BalancerTest, ModelSharingColocatesStructurallySimilarFunctions) {
  const auto models = SimilarAndDissimilarModels();
  BalancerOptions options;
  options.kind = BalancerKind::kModelSharing;
  options.gamma_distance = 1.0;
  options.gamma_correlation = 0.0;  // Pure structural similarity.
  options.clusters_per_node = 1;    // One cluster per node: pure K-medoids.
  const Placement placement = PlaceFunctions(models, 2, {}, costs_, options);
  // All VGG variants together, all BERT variants together, on distinct nodes.
  EXPECT_EQ(placement.at(models[0].name()), placement.at(models[1].name()));
  EXPECT_EQ(placement.at(models[1].name()), placement.at(models[2].name()));
  EXPECT_EQ(placement.at(models[3].name()), placement.at(models[4].name()));
  EXPECT_EQ(placement.at(models[4].name()), placement.at(models[5].name()));
  EXPECT_NE(placement.at(models[0].name()), placement.at(models[3].name()));
}

TEST_F(BalancerTest, CorrelationTermSeparatesSynchronizedFunctions) {
  // Two structurally identical pairs; within each pair demand is perfectly
  // correlated, across pairs anti-correlated. With a correlation-only
  // distance, the balancer splits the synchronized functions apart.
  std::vector<Model> models;
  for (int i = 0; i < 4; ++i) {
    Model model = TinyVgg(11);
    model.set_name("vgg_" + std::to_string(i));
    models.push_back(model);
  }
  std::map<std::string, DemandSeries> history;
  const DemandSeries day = {10.0, 0.0, 10.0, 0.0, 10.0, 0.0};
  const DemandSeries night = {0.0, 10.0, 0.0, 10.0, 0.0, 10.0};
  history["vgg_0"] = day;
  history["vgg_1"] = day;
  history["vgg_2"] = night;
  history["vgg_3"] = night;
  BalancerOptions options;
  options.kind = BalancerKind::kModelSharing;
  options.gamma_distance = 0.0;
  options.gamma_correlation = 1.0;
  options.clusters_per_node = 1;
  const Placement placement = PlaceFunctions(models, 2, history, costs_, options);
  // A perfectly synchronized pair is split apart, while a complementary
  // (anti-correlated) pair shares a node.
  EXPECT_NE(placement.at("vgg_0"), placement.at("vgg_1"));
  EXPECT_EQ(placement.at("vgg_0"), placement.at("vgg_2"));
}

TEST_F(BalancerTest, CombinedDistanceMatrixProperties) {
  const auto models = SimilarAndDissimilarModels();
  BalancerOptions options;
  const auto matrix = CombinedDistanceMatrix(models, {}, costs_, options);
  ASSERT_EQ(matrix.size(), models.size());
  for (size_t i = 0; i < matrix.size(); ++i) {
    EXPECT_EQ(matrix[i][i], 0.0);
    for (size_t j = 0; j < matrix.size(); ++j) {
      EXPECT_DOUBLE_EQ(matrix[i][j], matrix[j][i]);
      EXPECT_GE(matrix[i][j], 0.0);
      EXPECT_LE(matrix[i][j], options.gamma_distance + options.gamma_correlation + 1e-9);
    }
  }
  // Same-family distance < cross-family distance.
  EXPECT_LT(matrix[0][1], matrix[0][3]);
}

TEST_F(BalancerTest, BalancerKindNames) {
  EXPECT_STREQ(BalancerKindName(BalancerKind::kHash), "Hash");
  EXPECT_STREQ(BalancerKindName(BalancerKind::kLoadBased), "LoadBased");
  EXPECT_STREQ(BalancerKindName(BalancerKind::kModelSharing), "ModelSharing");
}

}  // namespace
}  // namespace optimus
