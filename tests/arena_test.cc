// Tests for the zero-copy tensor substrate (DESIGN.md §14): TensorArena
// allocation/recycling, arena-backed and aliased Tensor views, the SIMD
// data-movement kernels, and the vectorized resize against its scalar oracle.
// The resize-vs-oracle sweeps also run under ASan/UBSan in CI, which is what
// pins the coalesced-run kernels' bounds on odd shapes.

#include "src/tensor/arena.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/runtime/loader.h"
#include "src/tensor/simd.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

// ---------------------------------------------------------------------------
// TensorArena allocation behaviour.
// ---------------------------------------------------------------------------

TEST(TensorArenaTest, AllocationsAre64ByteAligned) {
  TensorArena arena(/*slab_elements=*/256);
  for (int i = 0; i < 8; ++i) {
    const float* ptr = arena.Allocate(7);  // Odd size forces alignment padding.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(ptr) % 64, 0u);
  }
}

TEST(TensorArenaTest, OwnsIsPreciseAcrossSlabs) {
  TensorArena arena(/*slab_elements=*/64);
  float* a = arena.Allocate(64);
  float* b = arena.Allocate(64);  // Second slab.
  EXPECT_TRUE(arena.Owns(a));
  EXPECT_TRUE(arena.Owns(b));
  EXPECT_GE(arena.num_slabs(), 2u);
  const float heap_float = 0.0f;
  EXPECT_FALSE(arena.Owns(&heap_float));
  EXPECT_FALSE(arena.Owns(nullptr));
}

TEST(TensorArenaTest, OversizedRequestGetsDedicatedSlab) {
  TensorArena arena(/*slab_elements=*/64);
  float* big = arena.Allocate(1000);
  EXPECT_TRUE(arena.Owns(big));
  EXPECT_GE(arena.elements_reserved(), 1000);
}

TEST(TensorArenaTest, ResetRecyclesReservationAndBumpsGeneration) {
  TensorArena arena(/*slab_elements=*/128);
  arena.Allocate(100);
  arena.Allocate(100);
  const int64_t reserved = arena.elements_reserved();
  const uint64_t gen = arena.generation();
  arena.Reset();
  EXPECT_EQ(arena.elements_used(), 0);
  EXPECT_EQ(arena.elements_reserved(), reserved);  // Slabs kept, not freed.
  EXPECT_EQ(arena.generation(), gen + 1);
  // Recycled memory is handed out again from the front.
  float* again = arena.Allocate(100);
  EXPECT_TRUE(arena.Owns(again));
  EXPECT_EQ(arena.elements_reserved(), reserved);
}

// ---------------------------------------------------------------------------
// Arena-backed tensor views: aliasing and ownership.
// ---------------------------------------------------------------------------

TEST(ArenaTensorTest, ViewVersusCopySemantics) {
  TensorArena arena;
  Tensor view(Shape({4, 4}), &arena);
  EXPECT_TRUE(view.arena_backed());
  EXPECT_TRUE(arena.Owns(view.data()));

  // A copy is always a deep heap copy — never a second view of the arena.
  Tensor copy = view;
  EXPECT_FALSE(copy.arena_backed());
  EXPECT_FALSE(arena.Owns(copy.data()));
  copy.Set(0, 9.0f);
  EXPECT_EQ(view.At(0), 0.0f);

  // A move transfers the view without touching arena memory.
  const float* data = view.data();
  Tensor moved = std::move(view);
  EXPECT_TRUE(moved.arena_backed());
  EXPECT_EQ(moved.data(), data);
}

TEST(ArenaTensorTest, ResetInvalidatesOutstandingViews) {
  TensorArena arena;
  Tensor view(Shape({8}), &arena);
  const uint64_t gen_at_alloc = arena.generation();
  arena.Reset();
  // The view's memory has been recycled: the generation proves it, and any
  // further use of `view` would be a use-after-reset bug.
  EXPECT_NE(arena.generation(), gen_at_alloc);
  Tensor recycled = Tensor::Uninitialized(Shape({8}), &arena);
  EXPECT_EQ(recycled.data(), view.data());  // Same slot, new generation.
}

TEST(ArenaTensorTest, DetachCopiesOutOfArena) {
  TensorArena arena;
  Tensor view(Shape({4}), &arena);
  view.Set(2, 5.0f);
  view.Detach();
  EXPECT_FALSE(view.arena_backed());
  EXPECT_FALSE(arena.Owns(view.data()));
  EXPECT_EQ(view.At(2), 5.0f);
}

TEST(ArenaTensorTest, MoveToMigratesHeapTensorIntoArena) {
  TensorArena arena;
  Rng rng(3);
  Tensor t(Shape({16}));
  t.FillRandom(&rng);
  const Tensor original = t;
  t.MoveTo(&arena);
  EXPECT_TRUE(t.arena_backed());
  EXPECT_TRUE(arena.Owns(t.data()));
  EXPECT_TRUE(t.ElementsEqual(original));
}

TEST(ArenaTensorTest, ElementsEqualAcrossArenaAndHeap) {
  TensorArena arena;
  Rng rng(4);
  Tensor heap(Shape({5, 3}));
  heap.FillRandom(&rng);
  Tensor in_arena = CopyTensor(heap, &arena);
  EXPECT_TRUE(in_arena.arena_backed());
  EXPECT_TRUE(heap.ElementsEqual(in_arena));
  EXPECT_TRUE(in_arena.ElementsEqual(heap));
  in_arena.Set(7, -1.0f);
  EXPECT_FALSE(heap.ElementsEqual(in_arena));
}

TEST(ArenaTensorTest, SetShapeInPlaceBoundedByCapacity) {
  TensorArena arena;
  Tensor t(Shape({4, 4}), &arena);
  t.SetShapeInPlace(Shape({2, 4}));  // Shrink: metadata only.
  EXPECT_EQ(t.NumElements(), 8);
  EXPECT_EQ(t.capacity(), 16);
  t.SetShapeInPlace(Shape({4, 4}));  // Grow back within capacity.
  EXPECT_EQ(t.NumElements(), 16);
  EXPECT_THROW(t.SetShapeInPlace(Shape({5, 4})), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Aliased tensors (zero-copy Replace).
// ---------------------------------------------------------------------------

TEST(AliasTensorTest, AliasSharesStorageWithoutCopying) {
  Rng rng(5);
  Tensor source(Shape({8, 8}));
  source.FillRandom(&rng);
  const Tensor alias = Tensor::AliasOf(source);
  EXPECT_TRUE(alias.aliased());
  EXPECT_FALSE(alias.arena_backed());
  EXPECT_EQ(alias.data(), source.data());
  EXPECT_TRUE(alias.ElementsEqual(source));
}

TEST(AliasTensorTest, CopyOfAliasIsDeep) {
  Tensor source(Shape({4}), 2.0f);
  const Tensor alias = Tensor::AliasOf(source);
  Tensor copy = alias;
  EXPECT_FALSE(copy.aliased());
  EXPECT_NE(copy.data(), source.data());
  copy.Set(0, 7.0f);
  EXPECT_EQ(source.At(0), 2.0f);
}

TEST(AliasTensorTest, InPlaceMutationRefusesOnAlias) {
  Tensor source(Shape({4, 4}), 1.0f);
  Tensor alias = Tensor::AliasOf(source);
  // The shared storage is read-only: relabeling or resizing in place must
  // refuse so the source's bytes are never disturbed.
  EXPECT_THROW(alias.SetShapeInPlace(Shape({2, 4})), std::logic_error);
  EXPECT_FALSE(ResizeToShapeInPlace(&alias, Shape({2, 4})));
  // Out-of-place resize still works and yields owned storage.
  const Tensor resized = ResizeToShape(alias, Shape({2, 4}));
  EXPECT_FALSE(resized.aliased());
  EXPECT_EQ(resized.Sum(), 8.0);
}

TEST(AliasTensorTest, DetachSeversTheAlias) {
  Tensor source(Shape({4}), 3.0f);
  Tensor alias = Tensor::AliasOf(source);
  alias.Detach();
  EXPECT_FALSE(alias.aliased());
  EXPECT_NE(alias.data(), source.data());
  alias.Set(0, -3.0f);
  EXPECT_EQ(source.At(0), 3.0f);
}

TEST(AliasTensorTest, MoveTransfersAlias) {
  Tensor source(Shape({4}), 1.0f);
  Tensor alias = Tensor::AliasOf(source);
  Tensor moved = std::move(alias);
  EXPECT_TRUE(moved.aliased());
  EXPECT_EQ(moved.data(), source.data());
}

TEST(AliasTensorTest, ExecutorReplaceAliasesDeployedWeights) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  ModelInstance container = loader.Instantiate(TinyVgg(11), /*weight_seed=*/1);
  Model dest_structure = TinyVgg(11);
  dest_structure.set_name("tiny_vgg11_b");
  const ModelInstance dest = loader.Instantiate(dest_structure, /*weight_seed=*/2);
  const TransformPlan plan =
      PlanTransform(container.model, dest.model, costs, PlannerKind::kGroup);
  ExecutePlan(&container, dest.model, plan);
  // Replace is a pointer swap: every replaced weight aliases the deployed
  // model's storage instead of holding a copy.
  size_t aliased = 0;
  for (const OpId id : container.model.OpIds()) {
    const Operation& got = container.model.op(id);
    const Operation& want = dest.model.op(id);
    for (size_t i = 0; i < got.weights.size(); ++i) {
      if (got.weights[i].aliased()) {
        ++aliased;
        ASSERT_LT(i, want.weights.size());
        EXPECT_EQ(got.weights[i].data(), want.weights[i].data());
      }
    }
  }
  EXPECT_GT(aliased, 0u);
}

// ---------------------------------------------------------------------------
// SIMD kernels.
// ---------------------------------------------------------------------------

TEST(SimdTest, StreamingGateRequiresSizeAndAlignment) {
  TensorArena arena;
  float* aligned = arena.Allocate(simd::kStreamingMinElements);
#if defined(__SSE2__)
  EXPECT_TRUE(simd::UsesStreamingStores(aligned, simd::kStreamingMinElements));
#endif
  // Small counts never stream; misaligned destinations never stream.
  EXPECT_FALSE(simd::UsesStreamingStores(aligned, 16));
  EXPECT_FALSE(simd::UsesStreamingStores(aligned + 1, simd::kStreamingMinElements));
}

TEST(SimdTest, CopyFloatsMatchesMemcpyAcrossGate) {
  Rng rng(6);
  // Cover: small (memcpy path), large aligned (streaming), large with
  // misaligned source (streaming loadu), and an odd tail past the vector loop.
  const int64_t sizes[] = {1, 63, simd::kStreamingMinElements + 7};
  for (const int64_t count : sizes) {
    TensorArena arena;
    Tensor src = Tensor::Uninitialized(Shape({count + 1}), &arena);
    src.FillRandom(&rng);
    Tensor dst = Tensor::Uninitialized(Shape({count}), &arena);
    simd::CopyFloats(dst.data(), src.data(), count);
    EXPECT_EQ(std::vector<float>(dst.data(), dst.data() + count),
              std::vector<float>(src.data(), src.data() + count))
        << "aligned copy, count=" << count;
    simd::CopyFloats(dst.data(), src.data() + 1, count);  // Misaligned source.
    EXPECT_EQ(std::vector<float>(dst.data(), dst.data() + count),
              std::vector<float>(src.data() + 1, src.data() + 1 + count))
        << "unaligned copy, count=" << count;
  }
}

TEST(SimdTest, ZeroFloatsClearsAcrossGate) {
  const int64_t sizes[] = {1, 63, simd::kStreamingMinElements + 7};
  for (const int64_t count : sizes) {
    TensorArena arena;
    Tensor dst = Tensor::Uninitialized(Shape({count}), &arena);
    Rng rng(7);
    dst.FillRandom(&rng);
    simd::ZeroFloats(dst.data(), count);
    EXPECT_EQ(dst.Sum(), 0.0) << "count=" << count;
  }
}

// ---------------------------------------------------------------------------
// Vectorized resize vs. the scalar oracle (runs under ASan in CI).
// ---------------------------------------------------------------------------

struct ResizeCase {
  Shape from;
  Shape to;
};

class ResizeOracleTest : public testing::TestWithParam<ResizeCase> {};

TEST_P(ResizeOracleTest, CoalescedKernelMatchesScalarReference) {
  const ResizeCase& c = GetParam();
  Rng rng(8);
  Tensor src(c.from);
  src.FillRandom(&rng);
  const Tensor oracle = ResizeToShapeScalar(src, c.to);

  const Tensor heap_out = ResizeToShape(src, c.to);
  EXPECT_TRUE(heap_out.ElementsEqual(oracle)) << c.from.ToString() << " -> " << c.to.ToString();

  TensorArena arena;
  const Tensor arena_out = ResizeToShape(src, c.to, &arena);
  EXPECT_TRUE(arena_out.arena_backed());
  EXPECT_TRUE(arena_out.ElementsEqual(oracle))
      << c.from.ToString() << " -> " << c.to.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    OddShapesAndEdges, ResizeOracleTest,
    testing::Values(
        // Odd prime-ish dims, pad and crop on every axis combination.
        ResizeCase{Shape({3, 5, 7}), Shape({4, 2, 9})},
        ResizeCase{Shape({7, 3}), Shape({3, 7})},
        ResizeCase{Shape({1, 1, 1}), Shape({3, 3, 3})},
        ResizeCase{Shape({5}), Shape({13})},
        ResizeCase{Shape({13}), Shape({5})},
        // Innermost-dim change only (split axis = last).
        ResizeCase{Shape({3, 3, 4, 9}), Shape({3, 3, 4, 5})},
        // Leading-dim change only (maximal coalesced run).
        ResizeCase{Shape({9, 4, 3}), Shape({2, 4, 3})},
        ResizeCase{Shape({2, 4, 3}), Shape({9, 4, 3})},
        // Equal shapes (pure copy through the resize path).
        ResizeCase{Shape({3, 3, 2}), Shape({3, 3, 2})},
        // Scalars and empty overlap.
        ResizeCase{Shape{}, Shape{}},
        ResizeCase{Shape({0, 4}), Shape({2, 4})},
        // Large enough to cross the streaming-store gate inside a run.
        ResizeCase{Shape({300, 1200}), Shape({520, 1200})},
        ResizeCase{Shape({520, 1200}), Shape({300, 1200})}));

TEST(ResizeOracleTest, InPlaceLeadingDimMatchesOracle) {
  Rng rng(9);
  TensorArena arena;
  Tensor src(Shape({6, 4, 3}), &arena);
  src.FillRandom(&rng);
  const Tensor original = src;  // Deep copy for the oracle input.

  // Shrink: metadata-only, storage untouched.
  const float* data = src.data();
  ASSERT_TRUE(ResizeToShapeInPlace(&src, Shape({2, 4, 3})));
  EXPECT_EQ(src.data(), data);
  EXPECT_TRUE(src.ElementsEqual(ResizeToShapeScalar(original, Shape({2, 4, 3}))));

  // Grow back within capacity: prefix preserved, tail zeroed.
  ASSERT_TRUE(ResizeToShapeInPlace(&src, Shape({6, 4, 3})));
  EXPECT_EQ(src.data(), data);
  const Tensor regrown_oracle =
      ResizeToShapeScalar(ResizeToShapeScalar(original, Shape({2, 4, 3})), Shape({6, 4, 3}));
  EXPECT_TRUE(src.ElementsEqual(regrown_oracle));

  // Beyond capacity or non-leading axis: refuses, caller copies instead.
  EXPECT_FALSE(ResizeToShapeInPlace(&src, Shape({7, 4, 3})));
  EXPECT_FALSE(ResizeToShapeInPlace(&src, Shape({6, 5, 3})));
}

// ---------------------------------------------------------------------------
// ModelInstance arena lifecycle: waste accounting and repacking.
// ---------------------------------------------------------------------------

TEST(ModelInstanceArenaTest, InstantiateMaterializesWeightsInArena) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  ModelInstance instance =
      loader.Instantiate(TinyVgg(11), /*weight_seed=*/1, nullptr, nullptr,
                         std::make_shared<TensorArena>());
  ASSERT_NE(instance.arena, nullptr);
  for (const OpId id : instance.model.OpIds()) {
    for (const Tensor& weight : instance.model.op(id).weights) {
      EXPECT_TRUE(weight.arena_backed());
      EXPECT_TRUE(instance.arena->Owns(weight.data()));
    }
  }
  EXPECT_LE(instance.ArenaWasteFactor(), 1.5);
}

TEST(ModelInstanceArenaTest, RepackReclaimsDeadArenaBytes) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  ModelInstance instance =
      loader.Instantiate(TinyBert(2, 64), /*weight_seed=*/1, nullptr, nullptr,
                         std::make_shared<TensorArena>());
  // Simulate transform churn: re-resize the largest weight until dead
  // allocations pile the waste factor past the repack trigger.
  OpId target = OpId{0};
  int64_t biggest = -1;
  for (const OpId id : instance.model.OpIds()) {
    for (const Tensor& weight : instance.model.op(id).weights) {
      if (weight.NumElements() > biggest) {
        biggest = weight.NumElements();
        target = id;
      }
    }
  }
  ASSERT_GT(biggest, 0);
  Operation& op = instance.model.mutable_op(target);
  const Shape original = op.weights[0].shape();
  for (int i = 0; i < 512 && instance.ArenaWasteFactor() <= 4.0; ++i) {
    op.weights[0] = ResizeToShape(op.weights[0], original, instance.arena.get());
  }
  EXPECT_GT(instance.ArenaWasteFactor(), 4.0);
  EXPECT_TRUE(instance.MaybeRepack());
  EXPECT_LE(instance.ArenaWasteFactor(), 1.5);
  instance.model.Validate();
}

}  // namespace
}  // namespace optimus
