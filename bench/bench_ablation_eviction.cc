// Ablation: composing Optimus with keep-alive-class work (§2.2).
//
// The paper states the first class of cold-start mitigation (pre-warming /
// keep-alive policies such as FaasCache's greedy-dual caching) is
// complementary to Optimus. This bench runs LRU vs greedy-dual eviction for
// both OpenWhisk and Optimus: greedy-dual preferentially evicts containers
// whose models are cheap to reload, which helps every system — and stacks
// with inter-function model transformation.

#include <cstdio>

#include "bench/bench_util.h"

namespace optimus {
namespace {

void Run() {
  const AnalyticCostModel costs;
  const auto models = benchutil::EndToEndModels();
  const auto names = benchutil::NamesOf(models);
  const Trace trace = benchutil::AzureWorkload(names);

  benchutil::PrintHeader(
      "Ablation: eviction policy (LRU vs FaasCache-style greedy-dual), Azure-like workload");
  std::printf("%-12s %-14s %12s %10s %12s\n", "system", "eviction", "service(s)", "cold%",
              "transform%");
  benchutil::PrintRule(66);

  for (const SystemType system : {SystemType::kOpenWhisk, SystemType::kOptimus}) {
    for (const EvictionPolicy eviction : {EvictionPolicy::kLru, EvictionPolicy::kGreedyDual}) {
      SimConfig config = benchutil::BaseSimConfig(system);
      config.eviction = eviction;
      const SimResult result = RunSimulation(models, trace, config, costs);
      std::printf("%-12s %-14s %12.3f %9.2f%% %11.2f%%\n", SystemTypeName(system),
                  eviction == EvictionPolicy::kLru ? "LRU" : "greedy-dual",
                  result.AvgServiceTime(), 100.0 * result.FractionOf(StartType::kCold),
                  100.0 * result.FractionOf(StartType::kTransform));
    }
  }
  std::printf(
      "\nPaper check (§2.2): keep-alive-class policies are complementary — greedy-dual\n"
      "improves (or at least does not hurt) both OpenWhisk and Optimus.\n");
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
