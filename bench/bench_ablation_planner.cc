// Ablation: Basic (Munkres, Module 2) vs Improved (group, Module 2+) planner
// end to end.
//
// Table 1 compares the planners per transformation; this ablation runs the
// whole Poisson workload under Optimus with each planner to confirm the
// linear planner's near-optimality carries to system-level service time,
// and reports the aggregate plan-cache statistics.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"

namespace optimus {
namespace {

void Run() {
  const AnalyticCostModel costs;
  const auto models = benchutil::EndToEndModels();
  const auto names = benchutil::NamesOf(models);
  const Trace trace = benchutil::PoissonWorkload(names);

  benchutil::PrintHeader("Ablation: planner choice under Optimus (Poisson workload)");
  std::printf("%-12s %12s %10s %12s %14s\n", "planner", "service(s)", "cold%", "transform%",
              "sim wall(s)");
  benchutil::PrintRule(66);
  for (const PlannerKind planner : {PlannerKind::kBasic, PlannerKind::kGroup}) {
    SimConfig config = benchutil::BaseSimConfig(SystemType::kOptimus);
    config.planner = planner;
    Stopwatch watch;
    const SimResult result = RunSimulation(models, trace, config, costs);
    std::printf("%-12s %12.3f %9.2f%% %11.2f%% %14.3f\n", PlannerKindName(planner),
                result.AvgServiceTime(), 100.0 * result.FractionOf(StartType::kCold),
                100.0 * result.FractionOf(StartType::kTransform), watch.ElapsedSeconds());
  }
  std::printf(
      "\nPaper check (Table 1): the Improved planner matches the Basic planner's\n"
      "service time while planning in linear time.\n");
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
