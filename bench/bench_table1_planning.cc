// Table 1: latency of planning and execution for three inter-function model
// transformation cases, comparing the Basic planner (Munkres over the
// Riesen-Bunke cost matrix, Module 2) against the Improved group-based
// planner (Module 2+).
//
// Expected shape (paper §8.4): the improved planner cuts planning time by
// orders of magnitude (paper: ~99.99%) at near-identical execution cost.
// Absolute planning times are far below the paper's (their prototype plans in
// Python; this is C++), but the Basic/Improved ratio is preserved.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/planner.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

void PrintCase(const Model& source, const Model& dest) {
  AnalyticCostModel costs;
  const TransformPlan basic = PlanTransform(source, dest, costs, PlannerKind::kBasic);
  const TransformPlan group = PlanTransform(source, dest, costs, PlannerKind::kGroup);
  std::printf("%-24s %14.3f %14.3f %14.4f %14.3f %10.2f%% %9.1fx\n",
              (source.name() + " -> " + dest.name()).c_str(), 1e3 * basic.planning_seconds,
              basic.total_cost, 1e3 * group.planning_seconds, group.total_cost,
              100.0 * (basic.planning_seconds - group.planning_seconds) /
                  basic.planning_seconds,
              group.total_cost / basic.total_cost);
}

void Run(bool smoke) {
  benchutil::PrintHeader("Table 1: planning vs execution latency, Basic vs Improved planner");
  std::printf("%-24s %14s %14s %14s %14s %11s %10s\n", "case", "basic plan(ms)", "basic exec(s)",
              "impr plan(ms)", "impr exec(s)", "plan saved", "exec ratio");
  benchutil::PrintRule(108);
  if (smoke) {
    // CI smoke run: one quarter-width case keeps the Munkres O(k^3) planning
    // tiny while still exercising the full table pipeline.
    VggOptions options;
    options.width_multiplier = 0.25;
    PrintCase(BuildVgg(11, options), BuildVgg(13, options));
    return;
  }
  PrintCase(BuildVgg(16), BuildVgg(19));
  PrintCase(BuildVgg(16), BuildResNet(50));
  PrintCase(BuildResNet(50), BuildVgg(19));
}

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  optimus::Run(optimus::benchutil::SmokeMode(argc, argv));
  return 0;
}
