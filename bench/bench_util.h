// Shared helpers for the figure/table reproduction benchmarks: fixed-width
// table printing and the common experiment configuration.

#ifndef OPTIMUS_BENCH_BENCH_UTIL_H_
#define OPTIMUS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/balancer/balancer.h"
#include "src/sim/simulator.h"
#include "src/telemetry/metrics.h"
#include "src/workload/azure.h"
#include "src/workload/poisson.h"
#include "src/zoo/registry.h"

namespace optimus {
namespace benchutil {

// CI smoke mode: benchmarks invoked with `--smoke` shrink their workloads to
// tiny iteration counts, so CI can catch benchmark bit-rot (build breaks,
// crashes, assertion failures) without burning minutes on full runs.
inline bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == std::string("--smoke")) {
      return true;
    }
  }
  return false;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

// The function set used by the end-to-end experiments (Figs. 13, 14, 16):
// twelve CNNs spanning the Imgclsmob-style families plus the ten-variation
// BERT zoo, mirroring §8.1's workloads.
inline std::vector<Model> EndToEndModels() {
  const ModelRegistry registry = RepresentativeModels();
  std::vector<Model> models;
  for (const std::string& name : RepresentativeModelNames()) {
    models.push_back(registry.Build(name));
  }
  return models;
}

inline std::vector<std::string> NamesOf(const std::vector<Model>& models) {
  std::vector<std::string> names;
  names.reserve(models.size());
  for (const Model& model : models) {
    names.push_back(model.name());
  }
  return names;
}

// Cluster configuration shared by the end-to-end benches.
inline SimConfig BaseSimConfig(SystemType system) {
  SimConfig config;
  config.system = system;
  config.num_nodes = 2;
  config.containers_per_node = 6;
  // Optimus ships the §5.1 model sharing-aware balancer; the baselines use
  // the hash placement of existing serverless platforms.
  config.placement.kind =
      system == SystemType::kOptimus ? BalancerKind::kModelSharing : BalancerKind::kHash;
  return config;
}

inline Trace PoissonWorkload(const std::vector<std::string>& functions) {
  PoissonTraceOptions options;
  options.horizon_seconds = 4.0 * 3600;
  options.seed = 2024;
  return GenerateMixedPoissonTrace(functions, options);
}

inline Trace AzureWorkload(const std::vector<std::string>& functions) {
  AzureTraceOptions options;
  options.horizon_seconds = 4.0 * 3600;
  options.seed = 2024;
  return GenerateAzureTrace(functions, options);
}

constexpr SystemType kAllSystems[] = {SystemType::kOpenWhisk, SystemType::kPagurus,
                                      SystemType::kTetris, SystemType::kOptimus};

inline std::string JsonEscapeString(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      escaped.push_back('\\');
    }
    escaped.push_back(c);
  }
  return escaped;
}

// BENCH_*.json schema version. scripts/bench_check.py refuses files whose
// schema it does not understand, so bump this when the layout changes.
//   optimus-bench/2: {"schema","git_sha","bench","series":[{name,labels,
//                     count,mean,p50,p95,p99,max}]}
inline constexpr const char kBenchSchema[] = "optimus-bench/2";

// Git SHA stamped into every BENCH_*.json so a perf-trajectory artifact can
// be traced back to the exact commit. CI exports OPTIMUS_GIT_SHA; local runs
// without it record "unknown".
inline std::string BenchGitSha() {
  const char* sha = std::getenv("OPTIMUS_GIT_SHA");
  return sha != nullptr && *sha != '\0' ? std::string(sha) : std::string("unknown");
}

inline void WriteBenchJsonHeader(std::ofstream& out, const std::string& bench_name) {
  out << "{\"schema\":\"" << kBenchSchema << "\",\"git_sha\":\""
      << JsonEscapeString(BenchGitSha()) << "\",\"bench\":\"" << JsonEscapeString(bench_name)
      << "\",\"series\":[";
}

// One exact-sample metric series for DumpScalarSeries. The telemetry
// histograms bucket logarithmically (≤25% relative width) — fine for serving
// tails, too coarse for microbenchmark regressions — so micro benches record
// raw samples and report exact order statistics.
struct ScalarSeries {
  std::string name;
  telemetry::Labels labels;
  std::vector<double> samples;
};

// Exact percentile (linear interpolation between order statistics).
inline double ExactPercentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

inline void WriteSeriesEntry(std::ofstream& out, bool* first, const std::string& name,
                             const telemetry::Labels& labels, unsigned long long count,
                             double mean, double p50, double p95, double p99, double max) {
  if (!*first) {
    out << ",";
  }
  *first = false;
  out << "{\"name\":\"" << JsonEscapeString(name) << "\",\"labels\":{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "\"" << JsonEscapeString(labels[i].first) << "\":\""
        << JsonEscapeString(labels[i].second) << "\"";
  }
  char stats[256];
  std::snprintf(stats, sizeof(stats),
                "},\"count\":%llu,\"mean\":%.9g,\"p50\":%.9g,\"p95\":%.9g,\"p99\":%.9g,"
                "\"max\":%.9g}",
                count, mean, p50, p95, p99, max);
  out << stats;
}

// Dumps exact-sample scalar series into BENCH_<bench_name>.json (same
// envelope as DumpRegistryPercentiles, but percentiles are computed from the
// raw samples, not histogram buckets). Returns true when the file was written.
inline bool DumpScalarSeries(const std::vector<ScalarSeries>& series,
                             const std::string& bench_name) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "DumpScalarSeries: cannot open %s\n", path.c_str());
    return false;
  }
  WriteBenchJsonHeader(out, bench_name);
  bool first = true;
  for (const ScalarSeries& entry : series) {
    if (entry.samples.empty()) {
      continue;
    }
    std::vector<double> sorted = entry.samples;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (const double sample : sorted) {
      sum += sample;
    }
    WriteSeriesEntry(out, &first, entry.name, entry.labels,
                     static_cast<unsigned long long>(sorted.size()),
                     sum / static_cast<double>(sorted.size()), ExactPercentile(sorted, 0.5),
                     ExactPercentile(sorted, 0.95), ExactPercentile(sorted, 0.99),
                     sorted.back());
  }
  out << "]}\n";
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// Dumps every histogram series in `registry` — count, mean, p50/p95/p99, max —
// into BENCH_<bench_name>.json, so the perf trajectory records tail latency,
// not just means. Returns true when the file was written.
inline bool DumpRegistryPercentiles(const telemetry::MetricsRegistry& registry,
                                    const std::string& bench_name) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "DumpRegistryPercentiles: cannot open %s\n", path.c_str());
    return false;
  }
  WriteBenchJsonHeader(out, bench_name);
  bool first = true;
  registry.VisitHistograms([&out, &first](const std::string& name,
                                          const telemetry::Labels& labels,
                                          const telemetry::HistogramSnapshot& snapshot) {
    if (snapshot.count == 0) {
      return;  // Unexercised series carry no signal.
    }
    WriteSeriesEntry(out, &first, name, labels, static_cast<unsigned long long>(snapshot.count),
                     snapshot.Mean(), snapshot.Percentile(0.5), snapshot.Percentile(0.95),
                     snapshot.Percentile(0.99), snapshot.max_seconds);
  });
  out << "]}\n";
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace benchutil
}  // namespace optimus

#endif  // OPTIMUS_BENCH_BENCH_UTIL_H_
