// Figure 15: latency proportion of the five meta-operators for three
// inter-function model transformation cases.
//
// Expected shape (paper §8.4): ResNet50 -> ResNet101 is Add-heavy (the
// destination has more CONVs); ResNet101 -> ResNet50 reuses existing CONVs
// and uses Reduce with no Add; Replace cost tracks the destination's weight
// volume.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/planner.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

void PrintCase(const Model& source, const Model& dest) {
  AnalyticCostModel costs;
  const TransformPlan plan = PlanTransform(source, dest, costs, PlannerKind::kGroup);
  const auto breakdown = plan.CostBreakdown();
  std::printf("%-24s", (source.name() + " -> " + dest.name()).c_str());
  for (int i = 0; i < kNumMetaOpKinds; ++i) {
    const double share =
        plan.total_cost > 0.0 ? 100.0 * breakdown[static_cast<size_t>(i)] / plan.total_cost : 0.0;
    std::printf(" %6.1f%%(%3d)", share, plan.CountOf(static_cast<MetaOpKind>(i)));
  }
  std::printf(" %9.3fs\n", plan.total_cost);
}

void Run() {
  benchutil::PrintHeader(
      "Figure 15: meta-operator latency proportion (share%(count)) per transformation case");
  std::printf("%-24s %12s %12s %12s %12s %12s %10s\n", "case", "Replace", "Reshape", "Reduce",
              "Add", "Edge", "total");
  benchutil::PrintRule(100);
  PrintCase(BuildVgg(16), BuildVgg(19));
  PrintCase(BuildResNet(50), BuildResNet(101));
  PrintCase(BuildResNet(101), BuildResNet(50));
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
