// Figure 2 (and the timeline of Figure 1): request processing time breakdown
// for the VGG and ResNet families under a cold start, plus the parameter /
// size table of Figure 2c.
//
// Expected shape (paper §3.1): model loading dominates the request (>50%),
// grows with depth within a family, and is NOT proportional to parameter
// count across families.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/cost_model.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

void Run() {
  const AnalyticCostModel costs;
  const SystemProfile profile = SystemProfile::Cpu();

  benchutil::PrintHeader("Figure 2(a,b): cold-start request processing time breakdown");
  std::printf("%-12s %10s %10s %10s %10s %8s\n", "model", "init(s)", "load(s)", "compute(s)",
              "total(s)", "load%");
  benchutil::PrintRule(66);

  const Model models[] = {BuildVgg(11),    BuildVgg(16),    BuildVgg(19),
                          BuildResNet(50), BuildResNet(101), BuildResNet(152)};
  for (const Model& model : models) {
    const double init = profile.InitCost();
    const double load = costs.ScratchLoadCost(model);
    const double compute = profile.InferenceCost(model);
    const double total = init + load + compute;
    std::printf("%-12s %10.3f %10.3f %10.3f %10.3f %7.1f%%\n", model.name().c_str(), init, load,
                compute, total, 100.0 * load / total);
  }

  benchutil::PrintHeader("Figure 2(c): number of parameters and serialized size");
  std::printf("%-12s %12s %12s %10s\n", "model", "params(M)", "size(MiB)", "ops");
  benchutil::PrintRule(50);
  for (const Model& model : models) {
    std::printf("%-12s %12.1f %12.0f %10zu\n", model.name().c_str(),
                static_cast<double>(model.ParamCount()) / 1e6,
                static_cast<double>(model.WeightBytes()) / (1024.0 * 1024.0), model.NumOps());
  }

  std::printf(
      "\nPaper check: load%% > 50%% for every model; load grows with family depth;\n"
      "ResNet loads are in the same ballpark as VGG despite ~5x fewer parameters.\n");
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
