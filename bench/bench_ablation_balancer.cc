// Ablation: the §5.1 model sharing-aware load balancer.
//
// Runs the Optimus system under the Azure-like workload with each placement
// strategy (hash, load-based, model-sharing K-medoids) and sweeps the
// gamma weights of the combined distance. The model-sharing balancer should
// lower average service time by giving transformation donors structurally
// closer models and complementary demand.

#include <cstdio>

#include "bench/bench_util.h"

namespace optimus {
namespace {

void Run() {
  const AnalyticCostModel costs;
  const auto models = benchutil::EndToEndModels();
  const auto names = benchutil::NamesOf(models);
  const Trace trace = benchutil::AzureWorkload(names);

  benchutil::PrintHeader("Ablation: placement strategy under Optimus (Azure-like workload)");
  std::printf("%-32s %12s %10s %12s\n", "balancer", "service(s)", "cold%", "transform%");
  benchutil::PrintRule(70);

  for (const BalancerKind kind :
       {BalancerKind::kHash, BalancerKind::kLoadBased, BalancerKind::kModelSharing}) {
    SimConfig config = benchutil::BaseSimConfig(SystemType::kOptimus);
    config.placement.kind = kind;
    const SimResult result = RunSimulation(models, trace, config, costs);
    std::printf("%-32s %12.3f %9.2f%% %11.2f%%\n", BalancerKindName(kind),
                result.AvgServiceTime(), 100.0 * result.FractionOf(StartType::kCold),
                100.0 * result.FractionOf(StartType::kTransform));
  }

  benchutil::PrintHeader("Ablation: gamma sweep for the model-sharing balancer");
  std::printf("%-16s %-16s %12s %10s\n", "gamma_distance", "gamma_corr", "service(s)", "cold%");
  benchutil::PrintRule(58);
  const double gammas[][2] = {{1.0, 0.0}, {0.8, 0.2}, {0.6, 0.4}, {0.4, 0.6}, {0.0, 1.0}};
  for (const auto& gamma : gammas) {
    SimConfig config = benchutil::BaseSimConfig(SystemType::kOptimus);
    config.placement.kind = BalancerKind::kModelSharing;
    config.placement.gamma_distance = gamma[0];
    config.placement.gamma_correlation = gamma[1];
    const SimResult result = RunSimulation(models, trace, config, costs);
    std::printf("%-16.2f %-16.2f %12.3f %9.2f%%\n", gamma[0], gamma[1], result.AvgServiceTime(),
                100.0 * result.FractionOf(StartType::kCold));
  }
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
