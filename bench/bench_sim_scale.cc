// Streaming-core scale benchmark (DESIGN.md §18): a million-request,
// thousand-node, hundred-thousand-function simulation in bounded memory.
//
// The workload is a streaming Poisson mix (PoissonProcessSource) over
// functions that alias a small zoo of distinct model structures — the
// million-function regime: distinct names and demand streams, shared
// architectures. The bench runs the SAME cluster at two request scales
// (identical functions and nodes, different horizons) in one process and
// reports, per scale, simulated events per wall second and peak RSS. Because
// the streaming core keeps O(nodes + functions) state — one pending arrival,
// lazily scheduled cycles, histogram + reservoir accounting instead of
// per-request records — peak RSS must NOT grow with the request count: the
// `sim_rss_growth_mb` series (large-scale peak minus small-scale peak) is
// gated near zero in bench/thresholds.json. A regression that reintroduces
// O(requests) state (records on the scale path, eager event scheduling)
// shows up as tens to hundreds of MB of growth.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workload/function_table.h"
#include "src/workload/trace_source.h"

namespace optimus {
namespace {

double PeakRssMb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct ScaleParams {
  size_t num_functions = 0;
  int num_nodes = 0;
  double small_horizon = 0.0;  // Seconds of simulated time, small scale.
  double large_horizon = 0.0;  // Seconds of simulated time, large scale.
};

struct ScaleRun {
  uint64_t requests = 0;
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  double peak_rss_mb = 0.0;
  double cold_frac = 0.0;
  double p95_service = 0.0;
};

ScaleRun RunScale(const SimWorkload& workload, FunctionTable* functions, size_t num_functions,
                  const SimConfig& config, const CostModel& costs, double horizon) {
  PoissonProcessSource::Options source_options;
  source_options.horizon_seconds = horizon;
  source_options.seed = 41;
  PoissonProcessSource source(functions, num_functions, "fn_", source_options);

  const auto start = std::chrono::steady_clock::now();
  const SimResult result = RunSimulationStream(workload, &source, config, costs);
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  ScaleRun run;
  run.requests = result.total_requests;
  run.wall_seconds = wall;
  run.requests_per_sec =
      wall > 0.0 ? static_cast<double>(result.total_requests) / wall : 0.0;
  run.peak_rss_mb = PeakRssMb();
  run.cold_frac = result.FractionOf(StartType::kCold);
  run.p95_service = result.ServiceTimePercentile(0.95);
  return run;
}

void Run(bool smoke) {
  // Few distinct structures, many functions: every function aliases one of
  // these models round-robin, so the simulation carries 100k demand streams
  // over a handful of architectures.
  const std::vector<Model> all = benchutil::EndToEndModels();
  const std::vector<Model> models(all.begin(), all.begin() + std::min<size_t>(all.size(), 8));

  // Smoke keeps an 8x request spread so an O(requests) memory regression
  // still moves the growth gauge by tens of MB even at CI scale.
  const ScaleParams params = smoke
                                 ? ScaleParams{8000, 120, /*small=*/120.0, /*large=*/960.0}
                                 : ScaleParams{100000, 1000, /*small=*/180.0, /*large=*/720.0};

  AnalyticCostModel costs;
  SimConfig config = benchutil::BaseSimConfig(SystemType::kOptimus);
  config.num_nodes = params.num_nodes;
  config.containers_per_node = 8;
  // The scale path must stay O(nodes + functions): no per-request records.
  config.records = RecordMode::kOff;

  // One shared function table across both scales — the cluster and function
  // universe are identical; only the request count differs.
  FunctionTable functions;
  {
    PoissonProcessSource::Options warmup;
    warmup.horizon_seconds = 0.0;  // Intern the names without arrivals.
    PoissonProcessSource intern_only(&functions, params.num_functions, "fn_", warmup);
  }
  SimWorkload workload;
  workload.models = &models;
  workload.functions = &functions;
  workload.function_model.reserve(params.num_functions);
  for (size_t fn = 0; fn < params.num_functions; ++fn) {
    workload.function_model.push_back(static_cast<int32_t>(fn % models.size()));
  }

  benchutil::PrintHeader("streaming simulator scale: bounded memory across request scales");
  std::printf("functions=%zu nodes=%d models=%zu\n", params.num_functions, params.num_nodes,
              models.size());
  std::printf("%-8s %12s %12s %14s %12s %8s %8s\n", "scale", "requests", "wall(s)", "req/s",
              "peakRSS(MB)", "cold%", "p95(s)");
  benchutil::PrintRule(84);

  // Small scale first: ru_maxrss is monotone, so the large scale's extra peak
  // is exactly the growth attributable to the larger request count.
  const ScaleRun small =
      RunScale(workload, &functions, params.num_functions, config, costs, params.small_horizon);
  std::printf("%-8s %12llu %12.2f %14.0f %12.1f %7.1f%% %8.3f\n", "small",
              static_cast<unsigned long long>(small.requests), small.wall_seconds,
              small.requests_per_sec, small.peak_rss_mb, 100.0 * small.cold_frac,
              small.p95_service);
  const ScaleRun large =
      RunScale(workload, &functions, params.num_functions, config, costs, params.large_horizon);
  std::printf("%-8s %12llu %12.2f %14.0f %12.1f %7.1f%% %8.3f\n", "large",
              static_cast<unsigned long long>(large.requests), large.wall_seconds,
              large.requests_per_sec, large.peak_rss_mb, 100.0 * large.cold_frac,
              large.p95_service);

  const double growth_mb = large.peak_rss_mb - small.peak_rss_mb;
  std::printf("peak-RSS growth small -> large (%.1fx requests): %.1f MB\n",
              small.requests > 0
                  ? static_cast<double>(large.requests) / static_cast<double>(small.requests)
                  : 0.0,
              growth_mb);

  std::vector<benchutil::ScalarSeries> series;
  series.push_back({"sim_requests_per_sec", {{"scale", "small"}}, {small.requests_per_sec}});
  series.push_back({"sim_requests_per_sec", {{"scale", "large"}}, {large.requests_per_sec}});
  series.push_back({"sim_peak_rss_mb", {{"scale", "small"}}, {small.peak_rss_mb}});
  series.push_back({"sim_peak_rss_mb", {{"scale", "large"}}, {large.peak_rss_mb}});
  series.push_back({"sim_rss_growth_mb", {}, {growth_mb}});
  benchutil::DumpScalarSeries(series, "sim_scale");
}

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  optimus::Run(optimus::benchutil::SmokeMode(argc, argv));
  return 0;
}
