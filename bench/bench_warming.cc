// Forecast-driven warming benchmark: does predictive pre-transformation
// actually cut cold/transform starts on a bursty trace, and at what
// speculation cost?
//
// Two simulations over the same all-bursty Azure-style trace (ISSUE: bursty
// functions are where reactive keep-alive loses — the burst front always pays
// the startup tax). The reactive run is the seed Optimus pipeline; the warming
// run layers the §17 forecaster + policy on a 120 s cycle. Reported series:
//
//   warming_cold_start_rate{mode}     cold+transform fraction per mode
//   cold_start_rate_reduction         reactive rate / warming rate (>1 good) —
//                                     hardware-independent, gated in CI
//   warming_waste_fraction            wasted pre-warms / pre-warms issued
//   warming_lead_seconds              pre-warm-to-first-hit lead time
//
// `--smoke` shrinks the horizon so CI catches bit-rot without minutes of
// simulated hours.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/simulator.h"
#include "src/workload/azure.h"

namespace optimus {
namespace {

struct ModeResult {
  std::string mode;
  SimResult result;
};

double ColdStartRate(const SimResult& result) {
  return result.FractionOf(StartType::kCold) + result.FractionOf(StartType::kTransform);
}

ModeResult RunMode(const std::string& mode, const std::vector<Model>& models,
                   const Trace& trace, bool warming, bool aggressive) {
  SimConfig config = benchutil::BaseSimConfig(SystemType::kOptimus);
  // More slots than the end-to-end benches: on a saturated cluster every
  // cold start is capacity-driven and speculation only steals donors, so the
  // warming comparison needs slack — the regime the §17 budget targets.
  config.num_nodes = 4;
  config.containers_per_node = 6;
  if (warming) {
    config.warming.enabled = true;
    config.warming.interval = 120.0;
    if (aggressive) {
      // Spend the slack: order floor low enough to cover the Zipf tail and a
      // per-cycle budget wide enough to re-warm every expired function.
      config.warming.budget.max_orders_per_cycle = 16;
      config.warming.budget.max_orders_per_node = 8;
      config.warming.budget.min_predicted_rate = 0.1;
    }
  }
  const AnalyticCostModel costs;
  return {mode, RunSimulation(models, trace, config, costs)};
}

int Run(bool smoke) {
  const std::vector<Model> models = benchutil::EndToEndModels();

  AzureTraceOptions options;
  // The sim runs in virtual time (milliseconds of wall clock either way), so
  // smoke only halves the horizon — fewer bursts than that and the reduction
  // measurement drowns in burst-arrival noise.
  options.horizon_seconds = smoke ? 2.0 * 3600 : 4.0 * 3600;
  options.seed = 11;
  options.force_pattern = 1;  // all bursty: the pattern warming exists for
  const Trace trace = GenerateAzureTrace(benchutil::NamesOf(models), options);

  std::vector<ModeResult> runs;
  runs.push_back(RunMode("reactive", models, trace, /*warming=*/false, false));
  runs.push_back(RunMode("default_budget", models, trace, /*warming=*/true, false));
  runs.push_back(RunMode("aggressive", models, trace, /*warming=*/true, true));

  benchutil::PrintHeader("forecast-driven warming vs reactive keep-alive (bursty trace)");
  std::printf("%-16s %10s %10s %10s %10s %10s %10s %10s\n", "mode", "requests", "cold_rate",
              "warm_frac", "prewarms", "hits", "waste", "p95_s");
  benchutil::PrintRule(95);
  for (const ModeResult& run : runs) {
    std::printf("%-16s %10zu %10.4f %10.4f %10zu %10zu %10zu %10.3f\n", run.mode.c_str(),
                run.result.records.size(), ColdStartRate(run.result),
                run.result.FractionOf(StartType::kWarm), run.result.WarmingPrewarms(),
                run.result.warming_hits, run.result.warming_waste,
                run.result.ServiceTimePercentile(0.95));
  }

  const SimResult& best = runs.back().result;
  const double reactive_rate = ColdStartRate(runs[0].result);
  const double warming_rate = ColdStartRate(best);
  // Ratio of rates survives CI-runner speed differences; floor the
  // denominator so a perfect warming run does not divide by zero.
  const double reduction = reactive_rate / std::max(warming_rate, 1e-9);
  const size_t prewarms = best.WarmingPrewarms();
  const double waste_fraction =
      prewarms == 0
          ? 0.0
          : static_cast<double>(best.warming_waste) / static_cast<double>(prewarms);
  std::printf("cold-start rate: reactive %.4f -> aggressive warming %.4f "
              "(%.2fx reduction, waste %.2f)\n",
              reactive_rate, warming_rate, reduction, waste_fraction);

  std::vector<benchutil::ScalarSeries> series;
  for (const ModeResult& run : runs) {
    series.push_back(
        {"warming_cold_start_rate", {{"mode", run.mode}}, {ColdStartRate(run.result)}});
  }
  series.push_back({"cold_start_rate_reduction", {}, {reduction}});
  series.push_back({"warming_waste_fraction", {}, {waste_fraction}});
  if (!best.warming_lead_seconds.empty()) {
    series.push_back({"warming_lead_seconds", {}, best.warming_lead_seconds});
  }
  return benchutil::DumpScalarSeries(series, "warming") ? 0 : 1;
}

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  const bool smoke = optimus::benchutil::SmokeMode(argc, argv);
  return optimus::Run(smoke);
}
