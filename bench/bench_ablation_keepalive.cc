// Ablation: keep-alive window and §4.2 idle-threshold sweep.
//
// The 10-minute keep-alive and 60-second idle threshold are the paper's
// defaults; this bench shows how Optimus' service time and start-type mix
// respond to both knobs under the Poisson workload.

#include <cstdio>

#include "bench/bench_util.h"

namespace optimus {
namespace {

void Run() {
  const AnalyticCostModel costs;
  const auto models = benchutil::EndToEndModels();
  const auto names = benchutil::NamesOf(models);
  const Trace trace = benchutil::PoissonWorkload(names);

  benchutil::PrintHeader("Ablation: keep-alive window (idle threshold fixed at 60s)");
  std::printf("%-16s %12s %10s %12s %10s\n", "keep-alive(s)", "service(s)", "cold%",
              "transform%", "warm%");
  benchutil::PrintRule(64);
  for (const double keep_alive : {120.0, 300.0, 600.0, 1200.0, 2400.0}) {
    SimConfig config = benchutil::BaseSimConfig(SystemType::kOptimus);
    config.keep_alive = keep_alive;
    const SimResult result = RunSimulation(models, trace, config, costs);
    std::printf("%-16.0f %12.3f %9.2f%% %11.2f%% %9.2f%%\n", keep_alive,
                result.AvgServiceTime(), 100.0 * result.FractionOf(StartType::kCold),
                100.0 * result.FractionOf(StartType::kTransform),
                100.0 * result.FractionOf(StartType::kWarm));
  }

  benchutil::PrintHeader("Ablation: idle threshold (keep-alive fixed at 600s)");
  std::printf("%-16s %12s %10s %12s %10s\n", "threshold(s)", "service(s)", "cold%", "transform%",
              "warm%");
  benchutil::PrintRule(64);
  for (const double threshold : {15.0, 30.0, 60.0, 120.0, 300.0}) {
    SimConfig config = benchutil::BaseSimConfig(SystemType::kOptimus);
    config.idle_threshold = threshold;
    const SimResult result = RunSimulation(models, trace, config, costs);
    std::printf("%-16.0f %12.3f %9.2f%% %11.2f%% %9.2f%%\n", threshold, result.AvgServiceTime(),
                100.0 * result.FractionOf(StartType::kCold),
                100.0 * result.FractionOf(StartType::kTransform),
                100.0 * result.FractionOf(StartType::kWarm));
  }
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
