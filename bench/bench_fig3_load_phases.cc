// Figure 3: latency of each model-loading step (deserialize the model file,
// load the model structure, assign weights) for 100 models from the
// Imgclsmob-style zoo.
//
// Expected shape (paper §3.2, Insight 2): structure loading dominates
// (89.66% on average in the paper), weight assignment ~10%, deserialization
// negligible.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/cost_model.h"

namespace optimus {
namespace {

void Run() {
  const AnalyticCostModel costs;
  const ModelRegistry zoo = ImgclsmobZoo();
  std::vector<std::string> names = zoo.Names();
  names.resize(100);  // First 100 models, as the paper samples 100.

  benchutil::PrintHeader("Figure 3: model loading phase split over 100 Imgclsmob-style models");
  std::printf("%-24s %12s %12s %12s %9s %9s %9s\n", "model", "deser(s)", "struct(s)",
              "weights(s)", "deser%", "struct%", "weights%");
  benchutil::PrintRule(94);

  double sum_deser_pct = 0.0;
  double sum_struct_pct = 0.0;
  double sum_weight_pct = 0.0;
  double min_struct_pct = 100.0;
  double max_struct_pct = 0.0;
  for (size_t i = 0; i < names.size(); ++i) {
    const Model model = zoo.Build(names[i]);
    const LoadBreakdown breakdown = costs.ModelLoadBreakdown(model);
    const double total = breakdown.Total();
    const double deser_pct = 100.0 * breakdown.deserialize / total;
    const double struct_pct = 100.0 * breakdown.structure / total;
    const double weight_pct = 100.0 * breakdown.weights / total;
    sum_deser_pct += deser_pct;
    sum_struct_pct += struct_pct;
    sum_weight_pct += weight_pct;
    min_struct_pct = std::min(min_struct_pct, struct_pct);
    max_struct_pct = std::max(max_struct_pct, struct_pct);
    if (i % 10 == 0) {  // Print every tenth row; the aggregate is the result.
      std::printf("%-24s %12.4f %12.4f %12.4f %8.1f%% %8.1f%% %8.1f%%\n", names[i].c_str(),
                  breakdown.deserialize, breakdown.structure, breakdown.weights, deser_pct,
                  struct_pct, weight_pct);
    }
  }
  benchutil::PrintRule(94);
  const double count = static_cast<double>(names.size());
  std::printf("%-24s %12s %12s %12s %8.1f%% %8.1f%% %8.1f%%\n", "AVERAGE (100 models)", "", "",
              "", sum_deser_pct / count, sum_struct_pct / count, sum_weight_pct / count);
  std::printf("structure-share range: %.1f%% .. %.1f%%\n", min_struct_pct, max_struct_pct);
  std::printf(
      "\nPaper check: structure loading dominates (paper: 89.66%% avg), weights ~10%%,\n"
      "deserialization negligible.\n");
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
