// Figure 8: execution time of the five meta-operators over representative
// ResNet50 operations, from the offline profiling module (§4.4, Module 1).
//
// Expected shape: Replace scales with destination weight size; Add scales
// with operation type/shape (CONV and dense are expensive); Reshape scales
// with the shape delta; Reduce is constant; Edge is negligible.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/runtime/cost_model.h"
#include "src/runtime/loader.h"
#include "src/zoo/chain_builder.h"
#include "src/zoo/resnet.h"

namespace optimus {
namespace {

void PrintAnalytic() {
  const AnalyticCostModel costs;
  benchutil::PrintHeader("Figure 8: meta-operator execution time (analytic, ms)");
  std::printf("%-44s %12s\n", "meta-operator", "time(ms)");
  benchutil::PrintRule(58);

  const struct {
    const char* label;
    double seconds;
  } rows[] = {
      {"Replace  conv 1x1x64", costs.ReplaceCost(OpKind::kConv2D, ConvAttrs(1, 64, 64))},
      {"Replace  conv 3x3x256", costs.ReplaceCost(OpKind::kConv2D, ConvAttrs(3, 256, 256))},
      {"Replace  dense 2048x1000", costs.ReplaceCost(OpKind::kDense, DenseAttrs(2048, 1000))},
      {"Replace  batchnorm 512", costs.ReplaceCost(OpKind::kBatchNorm, NormAttrs(512))},
      {"Reshape  conv 3x3x64 -> 3x3x128",
       costs.ReshapeCost(OpKind::kConv2D, ConvAttrs(3, 64, 64), ConvAttrs(3, 64, 128))},
      {"Reshape  conv 3x3x256 -> 5x5x256",
       costs.ReshapeCost(OpKind::kConv2D, ConvAttrs(3, 256, 256), ConvAttrs(5, 256, 256))},
      {"Reshape  batchnorm 256 -> 512",
       costs.ReshapeCost(OpKind::kBatchNorm, NormAttrs(256), NormAttrs(512))},
      {"Reduce   (any op)", costs.ReduceCost()},
      {"Add      activation", costs.AddCost(OpKind::kActivation, ReluAttrs())},
      {"Add      pooling", costs.AddCost(OpKind::kMaxPool, PoolAttrs(3, 2))},
      {"Add      conv 1x1x64", costs.AddCost(OpKind::kConv2D, ConvAttrs(1, 64, 64))},
      {"Add      conv 3x3x512", costs.AddCost(OpKind::kConv2D, ConvAttrs(3, 512, 512))},
      {"Add      dense 2048x1000", costs.AddCost(OpKind::kDense, DenseAttrs(2048, 1000))},
      {"Edge     (any edge)", costs.EdgeCost()},
  };
  for (const auto& row : rows) {
    std::printf("%-44s %12.4f\n", row.label, 1e3 * row.seconds);
  }
}

void PrintMeasured() {
  // Real wall time: transform tiny ResNet pairs and report per-meta-operator
  // execution time measured by the executor's instrumentation.
  AnalyticCostModel costs;
  Loader loader(&costs);
  ResNetOptions narrow;
  narrow.width_multiplier = 0.5;
  Model r18 = BuildResNet(18, narrow);
  r18.set_name("resnet18_half");
  Model r34 = BuildResNet(34, narrow);
  r34.set_name("resnet34_half");

  ModelInstance source = loader.Instantiate(r18, 1);
  const ModelInstance dest = loader.Instantiate(r34, 2);
  const TransformPlan plan = PlanTransform(source.model, dest.model, costs, PlannerKind::kGroup);
  const TransformExecutionStats stats = ExecutePlan(&source, dest.model, plan);

  benchutil::PrintHeader(
      "Figure 8 measured: per-kind wall time executing resnet18_half -> resnet34_half");
  std::printf("%-12s %8s %14s %16s\n", "meta-op", "count", "total(ms)", "avg(ms/op)");
  benchutil::PrintRule(54);
  for (int i = 0; i < kNumMetaOpKinds; ++i) {
    const int count = stats.count_by_kind[static_cast<size_t>(i)];
    const double seconds = stats.seconds_by_kind[static_cast<size_t>(i)];
    std::printf("%-12s %8d %14.4f %16.5f\n", MetaOpKindName(static_cast<MetaOpKind>(i)), count,
                1e3 * seconds, count > 0 ? 1e3 * seconds / count : 0.0);
  }
  std::printf("total transformation wall time: %.3f ms\n", 1e3 * stats.total_seconds);
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::PrintAnalytic();
  optimus::PrintMeasured();
  return 0;
}
