// Figure 14: percentage of cold start, model transformation, and warm start
// of requests under the Poisson and Azure-like workloads.
//
// Expected shape (paper §8.3): the inter-function container sharing systems
// (Pagurus, Tetris, Optimus) replace cold starts with transformations;
// Optimus has the lowest cold-start ratio.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace optimus {
namespace {

void RunWorkload(const char* label, const std::vector<Model>& models, const Trace& trace) {
  const AnalyticCostModel costs;
  benchutil::PrintHeader(std::string("Figure 14: start-type mix, ") + label);
  std::printf("%-12s %10s %12s %10s\n", "system", "cold%", "transform%", "warm%");
  benchutil::PrintRule(48);

  double openwhisk_cold = 0.0;
  double optimus_cold = 0.0;
  for (const SystemType system : benchutil::kAllSystems) {
    const SimResult result =
        RunSimulation(models, trace, benchutil::BaseSimConfig(system), costs);
    const double cold = 100.0 * result.FractionOf(StartType::kCold);
    std::printf("%-12s %9.2f%% %11.2f%% %9.2f%%\n", SystemTypeName(system), cold,
                100.0 * result.FractionOf(StartType::kTransform),
                100.0 * result.FractionOf(StartType::kWarm));
    if (system == SystemType::kOpenWhisk) {
      openwhisk_cold = cold;
    }
    if (system == SystemType::kOptimus) {
      optimus_cold = cold;
    }
  }
  std::printf("cold-start ratio: Optimus %.2f%% vs OpenWhisk %.2f%%\n", optimus_cold,
              openwhisk_cold);
}

}  // namespace
}  // namespace optimus

int main() {
  const auto models = optimus::benchutil::EndToEndModels();
  const auto names = optimus::benchutil::NamesOf(models);
  optimus::RunWorkload("Poisson workload", models, optimus::benchutil::PoissonWorkload(names));
  optimus::RunWorkload("Azure-like workload", models, optimus::benchutil::AzureWorkload(names));
  return 0;
}
