// Figure 11: inter-function model transformation latency between the 21
// representative models (11 CNNs + 10 BERT variations), plus the scratch-load
// row.
//
// Entry (i, j) is the safeguard-aware latency of turning model i's container
// into model j (diagonal = same structure, different weights). The final row
// is loading model j from scratch.
//
// Expected shape (paper §8.2): transformation cuts latency by up to ~99%
// within a family; the matrix is asymmetric (large->small < small->large);
// same-family entries beat cross-family entries; diagonal (weight swap) is
// cheapest; CNN<->transformer entries hit the safeguard and equal the
// scratch-load row.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/transformer.h"

namespace optimus {
namespace {

void Run() {
  AnalyticCostModel costs;
  Transformer transformer(&costs);
  const std::vector<Model> models = benchutil::EndToEndModels();
  const size_t n = models.size();

  benchutil::PrintHeader(
      "Figure 11: transformation latency (s) between 21 representative models");
  std::printf("%-18s", "from\\to");
  for (size_t j = 0; j < n; ++j) {
    std::printf(" %5zu", j + 1);
  }
  std::printf("\n");
  benchutil::PrintRule(18 + 6 * static_cast<int>(n));

  double best_reduction = 0.0;
  double total_reduction = 0.0;
  int reduction_count = 0;
  int safeguarded = 0;
  for (size_t i = 0; i < n; ++i) {
    std::printf("%2zu %-15.15s", i + 1, models[i].name().c_str());
    for (size_t j = 0; j < n; ++j) {
      double latency = 0.0;
      if (i == j) {
        // Same structure, different weights: pure Replace.
        for (const auto& [id, op] : models[j].ops()) {
          if (OpKindHasWeights(op.kind)) {
            latency += costs.ReplaceCost(op.kind, op.attrs);
          }
        }
      } else {
        const TransformDecision decision = transformer.Decide(models[i], models[j]);
        latency = decision.ChosenCost();
        if (!decision.use_transform) {
          ++safeguarded;
        }
        const double reduction = 100.0 * (decision.scratch_cost - latency) /
                                 decision.scratch_cost;
        best_reduction = std::max(best_reduction, reduction);
        total_reduction += reduction;
        ++reduction_count;
      }
      std::printf(" %5.2f", latency);
    }
    std::printf("\n");
  }
  std::printf("%-18s", "scratch load");
  for (size_t j = 0; j < n; ++j) {
    std::printf(" %5.2f", costs.ScratchLoadCost(models[j]));
  }
  std::printf("\n");

  std::printf("\nmodel index: ");
  for (size_t i = 0; i < n; ++i) {
    std::printf("%zu=%s ", i + 1, models[i].name().c_str());
  }
  std::printf(
      "\n\nbest latency reduction vs scratch: %.2f%% (paper: up to 99.08%%)\n"
      "mean latency reduction vs scratch:  %.2f%%\n"
      "safeguarded (scratch chosen) pairs: %d of %d\n",
      best_reduction, total_reduction / reduction_count, safeguarded,
      reduction_count);

  // Asymmetry check: within-family large->small vs small->large.
  const TransformDecision grow = transformer.Decide(models[0], models[2]);    // vgg11 -> vgg19.
  const TransformDecision shrink = transformer.Decide(models[2], models[0]);  // vgg19 -> vgg11.
  std::printf("asymmetry: vgg19->vgg11 %.3fs < vgg11->vgg19 %.3fs : %s\n",
              shrink.ChosenCost(), grow.ChosenCost(),
              shrink.ChosenCost() < grow.ChosenCost() ? "yes" : "NO");
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
