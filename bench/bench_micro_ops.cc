// Wall-clock micro benchmarks (google-benchmark) over the real data paths:
// tensor resize/overwrite, serialization, Munkres vs group planning, plan
// execution, and the end-to-end transform-or-load pipeline.
//
// These complement the figure benches: the figures report calibrated virtual
// latencies (machine-independent), while these measure what the C++
// implementation actually costs on this machine.

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/core/transformer.h"
#include "src/graph/serialization.h"
#include "src/runtime/loader.h"
#include "src/tensor/tensor_ops.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

Model HalfVgg(int depth) {
  VggOptions options;
  options.width_multiplier = 0.5;
  Model model = BuildVgg(depth, options);
  model.set_name("half_vgg" + std::to_string(depth));
  return model;
}

Model HalfResNet(int depth) {
  ResNetOptions options;
  options.width_multiplier = 0.5;
  Model model = BuildResNet(depth, options);
  model.set_name("half_resnet" + std::to_string(depth));
  return model;
}

void BM_TensorOverwrite(benchmark::State& state) {
  Rng rng(1);
  Tensor src(Shape({state.range(0), state.range(0)}));
  src.FillRandom(&rng);
  Tensor dst(Shape({state.range(0), state.range(0)}));
  for (auto _ : state) {
    OverwriteTensor(src, &dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * src.SizeBytes());
}
BENCHMARK(BM_TensorOverwrite)->Arg(64)->Arg(512)->Arg(2048);

void BM_TensorResize(benchmark::State& state) {
  Rng rng(2);
  Tensor src(Shape({3, 3, state.range(0), state.range(0)}));
  src.FillRandom(&rng);
  const Shape target({5, 5, state.range(0), state.range(0)});
  for (auto _ : state) {
    Tensor out = ResizeToShape(src, target);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TensorResize)->Arg(32)->Arg(128)->Arg(256);

void BM_SerializeRoundTrip(benchmark::State& state) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const ModelInstance instance = loader.Instantiate(HalfResNet(18), 1);
  for (auto _ : state) {
    const ModelFile file = SerializeModel(instance.model);
    const Model restored = DeserializeModel(file);
    benchmark::DoNotOptimize(restored.NumOps());
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_PlanBasic(benchmark::State& state) {
  AnalyticCostModel costs;
  const Model source = BuildVgg(16);
  const Model dest = BuildResNet(50);
  for (auto _ : state) {
    const TransformPlan plan = PlanTransform(source, dest, costs, PlannerKind::kBasic);
    benchmark::DoNotOptimize(plan.total_cost);
  }
}
BENCHMARK(BM_PlanBasic)->Unit(benchmark::kMillisecond);

void BM_PlanGroup(benchmark::State& state) {
  AnalyticCostModel costs;
  const Model source = BuildVgg(16);
  const Model dest = BuildResNet(50);
  for (auto _ : state) {
    const TransformPlan plan = PlanTransform(source, dest, costs, PlannerKind::kGroup);
    benchmark::DoNotOptimize(plan.total_cost);
  }
}
BENCHMARK(BM_PlanGroup)->Unit(benchmark::kMillisecond);

void BM_ExecutePlan(benchmark::State& state) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const Model source_structure = HalfVgg(16);
  const ModelInstance dest = loader.Instantiate(HalfVgg(19), 2);
  const TransformPlan plan =
      PlanTransform(source_structure, dest.model, costs, PlannerKind::kGroup);
  for (auto _ : state) {
    state.PauseTiming();
    ModelInstance source = loader.Instantiate(source_structure, 1);
    state.ResumeTiming();
    const TransformExecutionStats stats = ExecutePlan(&source, dest.model, plan);
    benchmark::DoNotOptimize(stats.total_seconds);
  }
}
BENCHMARK(BM_ExecutePlan)->Unit(benchmark::kMillisecond);

void BM_ScratchInstantiate(benchmark::State& state) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const Model structure = HalfVgg(19);
  for (auto _ : state) {
    ModelInstance instance = loader.Instantiate(structure, 1);
    benchmark::DoNotOptimize(instance.model.NumOps());
  }
}
BENCHMARK(BM_ScratchInstantiate)->Unit(benchmark::kMillisecond);

void BM_TransformOrLoad(benchmark::State& state) {
  AnalyticCostModel costs;
  Transformer transformer(&costs);
  Loader loader(&costs);
  const Model source_structure = HalfResNet(34);
  const ModelInstance dest = loader.Instantiate(HalfResNet(18), 2);
  for (auto _ : state) {
    state.PauseTiming();
    ModelInstance instance = loader.Instantiate(source_structure, 1);
    state.ResumeTiming();
    const TransformOutcome outcome = transformer.TransformOrLoad(&instance, dest.model);
    benchmark::DoNotOptimize(outcome.decision.use_transform);
  }
}
BENCHMARK(BM_TransformOrLoad)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace optimus

BENCHMARK_MAIN();
