// Wall-clock micro benchmarks over the real data paths.
//
// Two layers:
//   1. The arena-vs-seed comparison harness (always runs, `--smoke` shrinks
//      it): times the Replace/Reshape data paths on arena-backed tensors
//      against a faithful replica of the seed's heap-vector implementation
//      (zero-initialized allocation + innermost-dim-only memcpy recursion),
//      and writes BENCH_micro_ops.json with exact-sample latency series plus
//      hardware-independent speedup ratios. scripts/bench_check.py gates CI
//      on those ratios.
//   2. The google-benchmark suite (full runs only): tensor resize/overwrite,
//      serialization, Munkres vs group planning, plan execution, and the
//      end-to-end transform-or-load pipeline.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/core/transformer.h"
#include "src/graph/serialization.h"
#include "src/runtime/loader.h"
#include "src/tensor/tensor_ops.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

Model HalfVgg(int depth) {
  VggOptions options;
  options.width_multiplier = 0.5;
  Model model = BuildVgg(depth, options);
  model.set_name("half_vgg" + std::to_string(depth));
  return model;
}

Model HalfResNet(int depth) {
  ResNetOptions options;
  options.width_multiplier = 0.5;
  Model model = BuildResNet(depth, options);
  model.set_name("half_resnet" + std::to_string(depth));
  return model;
}

// ---------------------------------------------------------------------------
// Seed baseline replica: what the pre-arena tensor layer did.
//
// The seed's Tensor zero-initialized a fresh heap buffer on every allocation,
// and its ResizeToShape recursed over all outer axes issuing one memcpy per
// innermost row. These replicas keep that exact cost structure so the speedup
// series measures the arena + coalescing changes, not an artificial strawman.
// ---------------------------------------------------------------------------

std::vector<int64_t> SeedStrides(const Shape& shape) {
  std::vector<int64_t> strides(static_cast<size_t>(shape.Rank()), 1);
  for (int axis = shape.Rank() - 2; axis >= 0; --axis) {
    strides[static_cast<size_t>(axis)] =
        strides[static_cast<size_t>(axis) + 1] * shape.Dim(axis + 1);
  }
  return strides;
}

void SeedCopyOverlap(const float* src, float* dst, const std::vector<int64_t>& src_strides,
                     const std::vector<int64_t>& dst_strides,
                     const std::vector<int64_t>& overlap, int axis, int64_t src_base,
                     int64_t dst_base) {
  if (axis == static_cast<int>(overlap.size()) - 1) {
    std::memcpy(dst + dst_base, src + src_base,
                static_cast<size_t>(overlap[static_cast<size_t>(axis)]) * sizeof(float));
    return;
  }
  for (int64_t i = 0; i < overlap[static_cast<size_t>(axis)]; ++i) {
    SeedCopyOverlap(src, dst, src_strides, dst_strides, overlap, axis + 1,
                    src_base + i * src_strides[static_cast<size_t>(axis)],
                    dst_base + i * dst_strides[static_cast<size_t>(axis)]);
  }
}

// Seed Reshape data path: zero-initialized heap vector + per-row memcpy.
std::vector<float> SeedResize(const Tensor& src, const Shape& target) {
  std::vector<float> out(static_cast<size_t>(target.NumElements()));  // Zeroed.
  std::vector<int64_t> overlap(static_cast<size_t>(target.Rank()));
  for (int axis = 0; axis < target.Rank(); ++axis) {
    overlap[static_cast<size_t>(axis)] = std::min(src.shape().Dim(axis), target.Dim(axis));
    if (overlap[static_cast<size_t>(axis)] == 0) {
      return out;
    }
  }
  SeedCopyOverlap(src.data(), out.data(), SeedStrides(src.shape()), SeedStrides(target), overlap,
                  0, 0, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Comparison harness.
// ---------------------------------------------------------------------------

double MedianOf(std::vector<double> samples) {
  return benchutil::ExactPercentile(std::move(samples), 0.5);
}

struct ComparisonCase {
  std::string op;    // "replace" | "replace_copy" | "reshape_pad" | "reshape_crop" | "reshape_meta"
  std::string name;  // Shape tag, e.g. "dense_2048x1000".
  std::vector<double> seed_seconds;
  std::vector<double> arena_seconds;
};

// Replace at the largest zoo-ish sizes. Each timed iteration is one full
// weight turnover:
//   seed  — free the resident heap vector, allocate a zero-initialized one
//           (AllocateWeights), memcpy the new weights in (OverwriteTensor);
//   new   — what the executor now does: alias the deployed model's immutable
//           weights (Tensor::AliasOf), a pointer swap ("replace"); or, for
//           the copy-bound scratch/materialization path ("replace_copy"),
//           recycle the arena via Reset and copy with the streaming-store
//           kernel.
ComparisonCase RunReplaceCase(const std::string& op, const std::string& name, const Shape& shape,
                              int iterations) {
  ComparisonCase result{op, name, {}, {}};
  const bool alias = op == "replace";
  Rng rng(7);
  Tensor src(shape);
  src.FillRandom(&rng);
  const size_t count = static_cast<size_t>(src.NumElements());
  const size_t bytes = static_cast<size_t>(src.SizeBytes());
  TensorArena arena;
  std::vector<float> heap_resident(count);
  Tensor arena_resident = Tensor::Uninitialized(shape, &arena);
  Stopwatch watch;
  for (int i = -1; i < iterations; ++i) {  // Iteration -1 warms caches.
    watch.Reset();
    heap_resident = std::vector<float>(count);  // Free old + zeroed alloc.
    std::memcpy(heap_resident.data(), src.data(), bytes);
    benchmark::DoNotOptimize(heap_resident.data());
    const double seed_s = watch.ElapsedSeconds();

    watch.Reset();
    if (alias) {
      arena_resident = Tensor::AliasOf(src);
    } else {
      arena_resident = Tensor();  // Drop the old view before the arena recycles.
      arena.Reset();
      arena_resident = Tensor::Uninitialized(shape, &arena);
      OverwriteTensor(src, &arena_resident);
    }
    benchmark::DoNotOptimize(arena_resident.data());
    const double arena_s = watch.ElapsedSeconds();

    if (i >= 0) {
      result.seed_seconds.push_back(seed_s);
      result.arena_seconds.push_back(arena_s);
    }
  }
  return result;
}

// Reshape (pad or crop) where a non-innermost axis changes: the seed copies
// one innermost row per memcpy; the coalesced kernel copies whole contiguous
// blocks (and a pure crop also skips the zero-fill).
ComparisonCase RunResizeCase(const std::string& op, const std::string& name, const Shape& from,
                             const Shape& to, int iterations) {
  ComparisonCase result{op, name, {}, {}};
  Rng rng(11);
  Tensor src(from);
  src.FillRandom(&rng);
  TensorArena arena;
  // Resident output buffers: each timed iteration replaces them wholesale,
  // charging the seed path its per-op free + zeroed realloc and the arena
  // path its Reset, mirroring `op.weights[i] = ResizeToShape(...)`.
  std::vector<float> heap_resident(static_cast<size_t>(to.NumElements()));
  Tensor arena_resident = Tensor::Uninitialized(to, &arena);
  Stopwatch watch;
  for (int i = -1; i < iterations; ++i) {
    watch.Reset();
    heap_resident = SeedResize(src, to);
    benchmark::DoNotOptimize(heap_resident.data());
    const double seed_s = watch.ElapsedSeconds();

    watch.Reset();
    arena_resident = Tensor();  // Drop the old view before the arena recycles.
    arena.Reset();
    arena_resident = ResizeToShape(src, to, &arena);
    benchmark::DoNotOptimize(arena_resident.data());
    const double arena_s = watch.ElapsedSeconds();

    if (i >= 0) {
      result.seed_seconds.push_back(seed_s);
      result.arena_seconds.push_back(arena_s);
    }
  }
  return result;
}

// Metadata-only Reshape: shrinking the leading dimension of a row-major
// tensor. The seed still paid a full allocate-and-copy; the arena path
// relabels the shape in place.
ComparisonCase RunMetaReshapeCase(const std::string& name, const Shape& from, const Shape& to,
                                  int iterations) {
  ComparisonCase result{"reshape_meta", name, {}, {}};
  Rng rng(13);
  Tensor src(from);
  src.FillRandom(&rng);
  TensorArena arena;
  Tensor resident = CopyTensor(src, &arena);
  Stopwatch watch;
  for (int i = -1; i < iterations; ++i) {
    watch.Reset();
    std::vector<float> seed_out = SeedResize(src, to);
    benchmark::DoNotOptimize(seed_out.data());
    const double seed_s = watch.ElapsedSeconds();

    resident.SetShapeInPlace(from);  // Untimed restore (metadata only).
    watch.Reset();
    const bool in_place = ResizeToShapeInPlace(&resident, to);
    benchmark::DoNotOptimize(in_place);
    const double arena_s = watch.ElapsedSeconds();

    if (i >= 0) {
      result.seed_seconds.push_back(seed_s);
      result.arena_seconds.push_back(arena_s);
    }
  }
  return result;
}

int RunComparisonHarness(bool smoke) {
  const int iterations = smoke ? 8 : 40;
  std::vector<ComparisonCase> cases;
  // Largest zoo-scale weight shapes: a VGG/ResNet fc head, a BERT-size
  // feed-forward matrix, and wide conv kernels.
  cases.push_back(RunReplaceCase("replace", "dense_2048x1000", Shape({2048, 1000}), iterations));
  cases.push_back(
      RunReplaceCase("replace", "bert_ffn_1024x4096", Shape({1024, 4096}), iterations));
  cases.push_back(
      RunReplaceCase("replace_copy", "bert_ffn_1024x4096", Shape({1024, 4096}), iterations));
  cases.push_back(RunResizeCase("reshape_pad", "conv3x3_512to640",
                                Shape({3, 3, 512, 512}), Shape({3, 3, 640, 512}), iterations));
  cases.push_back(RunResizeCase("reshape_crop", "conv3x3_640to512",
                                Shape({3, 3, 640, 512}), Shape({3, 3, 512, 512}), iterations));
  cases.push_back(
      RunMetaReshapeCase("bert_vocab_4096to2048", Shape({4096, 1024}), Shape({2048, 1024}),
                         iterations));

  std::vector<benchutil::ScalarSeries> series;
  benchutil::PrintHeader("meta-op data paths: seed heap baseline vs tensor arena");
  std::printf("%-14s %-22s %14s %14s %10s\n", "op", "case", "seed_p50_us", "arena_p50_us",
              "speedup");
  benchutil::PrintRule(80);
  for (const ComparisonCase& c : cases) {
    const double seed_p50 = MedianOf(c.seed_seconds);
    const double arena_p50 = MedianOf(c.arena_seconds);
    // Floor the denominator at 1ns: the metadata-only path can be faster than
    // the clock's resolution.
    const double speedup = seed_p50 / std::max(arena_p50, 1e-9);
    std::printf("%-14s %-22s %14.1f %14.3f %9.1fx\n", c.op.c_str(), c.name.c_str(),
                seed_p50 * 1e6, arena_p50 * 1e6, speedup);
    series.push_back({"micro_op_seconds",
                      {{"op", c.op}, {"path", "seed"}, {"case", c.name}},
                      c.seed_seconds});
    series.push_back({"micro_op_seconds",
                      {{"op", c.op}, {"path", "arena"}, {"case", c.name}},
                      c.arena_seconds});
    // Hardware-independent regression signal: the ratio of medians survives
    // CI-runner speed differences that absolute wall times do not.
    series.push_back({"micro_op_speedup", {{"op", c.op}, {"case", c.name}}, {speedup}});
  }
  return benchutil::DumpScalarSeries(series, "micro_ops") ? 0 : 1;
}

// ---------------------------------------------------------------------------
// google-benchmark suite (full runs only).
// ---------------------------------------------------------------------------

void BM_TensorOverwrite(benchmark::State& state) {
  Rng rng(1);
  Tensor src(Shape({state.range(0), state.range(0)}));
  src.FillRandom(&rng);
  Tensor dst(Shape({state.range(0), state.range(0)}));
  for (auto _ : state) {
    OverwriteTensor(src, &dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * src.SizeBytes());
}
BENCHMARK(BM_TensorOverwrite)->Arg(64)->Arg(512)->Arg(2048);

void BM_TensorResize(benchmark::State& state) {
  Rng rng(2);
  Tensor src(Shape({3, 3, state.range(0), state.range(0)}));
  src.FillRandom(&rng);
  const Shape target({5, 5, state.range(0), state.range(0)});
  for (auto _ : state) {
    Tensor out = ResizeToShape(src, target);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TensorResize)->Arg(32)->Arg(128)->Arg(256);

void BM_TensorResizeArena(benchmark::State& state) {
  Rng rng(2);
  TensorArena arena;
  Tensor src(Shape({3, 3, state.range(0), state.range(0)}));
  src.FillRandom(&rng);
  const Shape target({5, 5, state.range(0), state.range(0)});
  for (auto _ : state) {
    arena.Reset();
    Tensor out = ResizeToShape(src, target, &arena);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TensorResizeArena)->Arg(32)->Arg(128)->Arg(256);

void BM_SerializeRoundTrip(benchmark::State& state) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const ModelInstance instance = loader.Instantiate(HalfResNet(18), 1);
  for (auto _ : state) {
    const ModelFile file = SerializeModel(instance.model);
    const Model restored = DeserializeModel(file);
    benchmark::DoNotOptimize(restored.NumOps());
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_PlanBasic(benchmark::State& state) {
  AnalyticCostModel costs;
  const Model source = BuildVgg(16);
  const Model dest = BuildResNet(50);
  for (auto _ : state) {
    const TransformPlan plan = PlanTransform(source, dest, costs, PlannerKind::kBasic);
    benchmark::DoNotOptimize(plan.total_cost);
  }
}
BENCHMARK(BM_PlanBasic)->Unit(benchmark::kMillisecond);

void BM_PlanGroup(benchmark::State& state) {
  AnalyticCostModel costs;
  const Model source = BuildVgg(16);
  const Model dest = BuildResNet(50);
  for (auto _ : state) {
    const TransformPlan plan = PlanTransform(source, dest, costs, PlannerKind::kGroup);
    benchmark::DoNotOptimize(plan.total_cost);
  }
}
BENCHMARK(BM_PlanGroup)->Unit(benchmark::kMillisecond);

void BM_ExecutePlan(benchmark::State& state) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const Model source_structure = HalfVgg(16);
  const ModelInstance dest = loader.Instantiate(HalfVgg(19), 2);
  const TransformPlan plan =
      PlanTransform(source_structure, dest.model, costs, PlannerKind::kGroup);
  auto arena = std::make_shared<TensorArena>();
  for (auto _ : state) {
    state.PauseTiming();
    ModelInstance source = loader.Instantiate(source_structure, 1, nullptr, nullptr, arena);
    state.ResumeTiming();
    const TransformExecutionStats stats = ExecutePlan(&source, dest.model, plan);
    benchmark::DoNotOptimize(stats.total_seconds);
    state.PauseTiming();
    source.arena.reset();  // Keep `arena` reusable after `source` dies.
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ExecutePlan)->Unit(benchmark::kMillisecond);

void BM_ScratchInstantiate(benchmark::State& state) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const Model structure = HalfVgg(19);
  for (auto _ : state) {
    ModelInstance instance = loader.Instantiate(structure, 1);
    benchmark::DoNotOptimize(instance.model.NumOps());
  }
}
BENCHMARK(BM_ScratchInstantiate)->Unit(benchmark::kMillisecond);

void BM_TransformOrLoad(benchmark::State& state) {
  AnalyticCostModel costs;
  Transformer transformer(&costs);
  Loader loader(&costs);
  const Model source_structure = HalfResNet(34);
  const ModelInstance dest = loader.Instantiate(HalfResNet(18), 2);
  for (auto _ : state) {
    state.PauseTiming();
    ModelInstance instance = loader.Instantiate(source_structure, 1);
    state.ResumeTiming();
    const TransformOutcome outcome = transformer.TransformOrLoad(&instance, dest.model);
    benchmark::DoNotOptimize(outcome.decision.use_transform);
  }
}
BENCHMARK(BM_TransformOrLoad)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  const bool smoke = optimus::benchutil::SmokeMode(argc, argv);
  const int harness_rc = optimus::RunComparisonHarness(smoke);
  if (smoke) {
    return harness_rc;  // CI smoke: the harness + JSON dump is the product.
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return harness_rc;
}
