// Micro-benchmark for the placement subsystem (DESIGN.md §13): the routing
// decision must stay O(1) nanosecond-scale (it sits on every invoke), while a
// full K-medoids rebalance is the amortized background cost. Emits
// BENCH_placement.json with route-decision latency, warm-hit invoke latency,
// and per-rebalance cost percentiles. The CI smoke run doubles as a
// correctness check that routing and rebalancing survive at cluster scale.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/platform.h"
#include "src/placement/manager.h"

namespace optimus {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Run(bool smoke) {
  const AnalyticCostModel costs;
  const std::vector<Model> models = benchutil::EndToEndModels();
  telemetry::MetricsRegistry registry;
  telemetry::Histogram& route_ns =
      registry.GetHistogram("bench_route_decision_nanos", {},
                           "Placement-table routing decision latency (ns)");
  telemetry::Histogram& rebalance_seconds =
      registry.GetHistogram("bench_rebalance_seconds", {},
                           "Full K-medoids placement recompute latency (s)");
  telemetry::Histogram& warm_invoke_seconds =
      registry.GetHistogram("bench_warm_invoke_seconds", {},
                           "End-to-end warm-hit invoke latency through routing (s)");

  // --- Routing-decision latency over a realistically sized table. ------------
  PlacementManagerOptions manager_options;
  manager_options.num_nodes = 8;
  PlacementManager manager(manager_options, &costs, nullptr);
  std::vector<const Model*> model_ptrs;
  for (const Model& model : models) {
    manager.AddFunction(model, model_ptrs);
    model_ptrs.push_back(&model);
  }
  const int route_batches = smoke ? 20 : 2000;
  constexpr int kRoutesPerBatch = 256;
  long long sink = 0;
  for (int batch = 0; batch < route_batches; ++batch) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kRoutesPerBatch; ++i) {
      sink += manager.Route(models[static_cast<size_t>(i) % models.size()].name());
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    route_ns.Observe(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
        kRoutesPerBatch);
  }

  // --- Rebalance cost: the full §5.1 K-medoids solve over the zoo. ------------
  const auto history = manager.DemandHistory();
  const int rebalances = smoke ? 3 : 30;
  for (int i = 0; i < rebalances; ++i) {
    const double start = NowSeconds();
    if (!manager.Rebalance(model_ptrs, history, "manual")) {
      std::fprintf(stderr, "bench_placement: rebalance failed\n");
      return 1;
    }
    rebalance_seconds.Observe(NowSeconds() - start);
  }

  // --- Warm-hit invoke latency through the table-driven router. ---------------
  PlatformOptions options;
  options.num_nodes = 4;
  options.containers_per_node = 4;
  options.warm_plan_cache = false;  // Routing bench; skip deploy-time planning.
  OptimusPlatform platform(&costs, options);
  platform.Deploy("vgg11", models[0]);
  const std::vector<float> input(8, 0.5f);
  platform.Invoke("vgg11", input, 0.0);  // Cold; the container stays resident.
  const uint64_t locks_before = platform.NodeLockAcquisitions();
  const int warm_invokes = smoke ? 50 : 1000;
  for (int i = 0; i < warm_invokes; ++i) {
    const double start = NowSeconds();
    platform.Invoke("vgg11", input, 1.0);
    warm_invoke_seconds.Observe(NowSeconds() - start);
  }
  const uint64_t locks = platform.NodeLockAcquisitions() - locks_before;
  if (locks != static_cast<uint64_t>(warm_invokes)) {
    std::fprintf(stderr, "bench_placement: warm hits took %llu locks for %d invokes\n",
                 static_cast<unsigned long long>(locks), warm_invokes);
    return 1;
  }

  benchutil::PrintHeader("Placement subsystem micro-benchmark");
  std::printf("functions=%zu nodes=%d version=%llu (sink=%lld)\n", models.size(),
              manager_options.num_nodes,
              static_cast<unsigned long long>(manager.Version()), sink);
  benchutil::DumpRegistryPercentiles(registry, "placement");
  return 0;
}

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  return optimus::Run(optimus::benchutil::SmokeMode(argc, argv));
}
