// Ablation: the safeguard of §4.4 Module 3.
//
// Compares, over every ordered pair of the 21 representative models, the
// latency of (a) always transforming, (b) always scratch-loading, and
// (c) the safeguard (min of the two per pair). The safeguard should match
// the best of both worlds: equal to always-transform where transformation
// wins and never worse than scratch anywhere.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/transformer.h"

namespace optimus {
namespace {

void Run() {
  AnalyticCostModel costs;
  Transformer transformer(&costs);
  const std::vector<Model> models = benchutil::EndToEndModels();

  double always_transform = 0.0;
  double always_scratch = 0.0;
  double safeguarded = 0.0;
  int pairs = 0;
  int fallbacks = 0;
  double worst_transform_penalty = 0.0;
  for (const Model& source : models) {
    for (const Model& dest : models) {
      if (source.name() == dest.name()) {
        continue;
      }
      const TransformDecision decision = transformer.Decide(source, dest);
      always_transform += decision.transform_cost;
      always_scratch += decision.scratch_cost;
      safeguarded += decision.ChosenCost();
      ++pairs;
      if (!decision.use_transform) {
        ++fallbacks;
        worst_transform_penalty =
            std::max(worst_transform_penalty, decision.transform_cost - decision.scratch_cost);
      }
    }
  }

  benchutil::PrintHeader("Ablation: safeguard on/off over all 21x20 model pairs");
  std::printf("%-36s %14s\n", "policy", "total load(s)");
  benchutil::PrintRule(52);
  std::printf("%-36s %14.3f\n", "always transform (no safeguard)", always_transform);
  std::printf("%-36s %14.3f\n", "always scratch (no transformation)", always_scratch);
  std::printf("%-36s %14.3f\n", "safeguard (Optimus)", safeguarded);
  std::printf(
      "\npairs: %d, safeguard fallbacks: %d\n"
      "worst per-pair penalty avoided by the safeguard: %.3fs\n"
      "safeguard vs always-transform: %.2f%% lower; vs always-scratch: %.2f%% lower\n",
      pairs, fallbacks, worst_transform_penalty,
      100.0 * (always_transform - safeguarded) / always_transform,
      100.0 * (always_scratch - safeguarded) / always_scratch);
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
