// Ablation: fine-grained vs homogeneous container memory allocation (§6).
//
// The paper notes two limitations of homogeneous allocation: memory is
// wasted when small models get large containers, and too few containers fit
// a memory-limited node. Fine-grained allocation sizes containers to their
// models, fitting more containers (more warm starts) — but a small donor
// container can no longer host a larger model, trimming the donor pool.

#include <cstdio>

#include "bench/bench_util.h"

namespace optimus {
namespace {

void RunWithBudget(const char* label, int64_t node_memory_bytes) {
  const AnalyticCostModel costs;
  const auto models = benchutil::EndToEndModels();
  const auto names = benchutil::NamesOf(models);
  const Trace trace = benchutil::AzureWorkload(names);

  benchutil::PrintHeader(std::string("Ablation: container memory allocation, ") + label);
  std::printf("%-28s %12s %10s %12s %10s %12s\n", "allocation", "service(s)", "cold%",
              "transform%", "warm%", "p95(s)");
  benchutil::PrintRule(90);
  for (const bool fine_grained : {false, true}) {
    SimConfig config = benchutil::BaseSimConfig(SystemType::kOptimus);
    config.node_memory_bytes = node_memory_bytes;
    config.fine_grained_containers = fine_grained;
    const SimResult result = RunSimulation(models, trace, config, costs);
    std::printf("%-28s %12.3f %9.2f%% %11.2f%% %9.2f%% %12.3f\n",
                fine_grained ? "fine-grained (model-sized)" : "homogeneous (4 GiB each)",
                result.AvgServiceTime(), 100.0 * result.FractionOf(StartType::kCold),
                100.0 * result.FractionOf(StartType::kTransform),
                100.0 * result.FractionOf(StartType::kWarm),
                result.ServiceTimePercentile(0.95));
  }
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::RunWithBudget("16 GiB per node", 16LL << 30);
  optimus::RunWithBudget("8 GiB per node", 8LL << 30);
  return 0;
}
