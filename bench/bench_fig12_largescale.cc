// Figure 12: large-scale evaluation of transformation latency — 500 random
// transformation cases vs 500 scratch loads, in (a,b) the Imgclsmob-style zoo
// and (c,d) the NAS-Bench-201 zoo.
//
// Expected shape (paper §8.2): transformation reduces model loading latency
// by ~52.9% in Imgclsmob and ~94.5% in NASBench (NASBench models are
// structurally near-identical, so almost everything is reused).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/transformer.h"

namespace optimus {
namespace {

struct Summary {
  double min = 1e18;
  double max = 0.0;
  double total = 0.0;
  int count = 0;

  void Add(double value) {
    min = std::min(min, value);
    max = std::max(max, value);
    total += value;
    ++count;
  }

  double Avg() const { return count > 0 ? total / count : 0.0; }
};

void RunZoo(const char* label, const ModelRegistry& zoo, int cases, uint64_t seed) {
  AnalyticCostModel costs;
  Transformer transformer(&costs);
  const std::vector<std::string> names = zoo.Names();
  Rng rng(seed);

  // Cache built models: building 500 pairs from scratch is wasteful.
  std::map<std::string, Model> built;
  auto get = [&](const std::string& name) -> const Model& {
    auto it = built.find(name);
    if (it == built.end()) {
      it = built.emplace(name, zoo.Build(name)).first;
    }
    return it->second;
  };

  Summary transform;
  Summary scratch;
  for (int i = 0; i < cases; ++i) {
    const std::string& from = names[rng.UniformInt(0, static_cast<int64_t>(names.size()) - 1)];
    const std::string& to = names[rng.UniformInt(0, static_cast<int64_t>(names.size()) - 1)];
    if (from == to) {
      continue;
    }
    const TransformDecision decision = transformer.Decide(get(from), get(to));
    transform.Add(decision.ChosenCost());
    scratch.Add(decision.scratch_cost);
  }

  benchutil::PrintHeader(std::string("Figure 12: ") + label);
  std::printf("%-32s %10s %10s %10s %8s\n", "case", "min(s)", "avg(s)", "max(s)", "n");
  benchutil::PrintRule(76);
  std::printf("%-32s %10.3f %10.3f %10.3f %8d\n", "transformation", transform.min,
              transform.Avg(), transform.max, transform.count);
  std::printf("%-32s %10.3f %10.3f %10.3f %8d\n", "loading from scratch", scratch.min,
              scratch.Avg(), scratch.max, scratch.count);
  std::printf("average loading-latency reduction: %.2f%%\n",
              100.0 * (scratch.Avg() - transform.Avg()) / scratch.Avg());
}

}  // namespace
}  // namespace optimus

int main() {
  {
    const optimus::ModelRegistry zoo = optimus::ImgclsmobZoo();
    optimus::RunZoo("500 random cases in the Imgclsmob-style zoo (paper: 52.88% reduction)", zoo,
                    500, 11);
  }
  {
    const optimus::ModelRegistry zoo = optimus::NasBenchZoo(120, 7);
    optimus::RunZoo("500 random cases in the NAS-Bench-201 zoo (paper: 94.48% reduction)", zoo,
                    500, 13);
  }
  return 0;
}
