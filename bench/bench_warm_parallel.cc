// Deploy-time plan warming, serial vs parallel (§4.4 Module 3).
//
// Replays the platform's registration sequence over a 20-model repository:
// each arriving model is pre-planned against every already-registered model
// (both directions) — the O(N^2) pre-planning loop that PlanCache::WarmFor
// now fans out across a ThreadPool. The bench times the serial and parallel
// paths for both planners and verifies the two caches end bit-identical
// (same keys, same plan costs), exiting non-zero on any divergence so the
// CI smoke run doubles as a correctness check.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/fault.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/core/plan_cache.h"
#include "src/core/platform.h"

namespace optimus {
namespace {

constexpr int kWarmThreads = 4;

// Replays deploy-time warming: model i is planned against models 0..i-1.
// Returns wall seconds for the whole registration sequence.
double WarmRepository(PlanCache* cache, const std::vector<Model>& repository, ThreadPool* pool) {
  Stopwatch watch;
  std::vector<std::reference_wrapper<const Model>> registered;
  registered.reserve(repository.size());
  for (const Model& model : repository) {
    cache->WarmFor(model, registered, pool);
    registered.emplace_back(model);
  }
  return watch.ElapsedSeconds();
}

bool CachesIdentical(PlanCache* a, PlanCache* b, const std::vector<Model>& repository) {
  if (a->Size() != b->Size()) {
    std::printf("  MISMATCH: cache sizes differ (%zu vs %zu)\n", a->Size(), b->Size());
    return false;
  }
  for (const Model& source : repository) {
    for (const Model& dest : repository) {
      if (source.name() == dest.name()) {
        continue;
      }
      if (!a->Contains(source.name(), dest.name()) || !b->Contains(source.name(), dest.name())) {
        std::printf("  MISMATCH: missing key %s -> %s\n", source.name().c_str(),
                    dest.name().c_str());
        return false;
      }
      // Both caches are fully warmed, so GetOrPlan only reads.
      const double cost_a = a->GetOrPlan(source, dest).total_cost;
      const double cost_b = b->GetOrPlan(source, dest).total_cost;
      if (cost_a != cost_b) {
        std::printf("  MISMATCH: plan cost differs for %s -> %s (%f vs %f)\n",
                    source.name().c_str(), dest.name().c_str(), cost_a, cost_b);
        return false;
      }
    }
  }
  return true;
}

// Runs serial-vs-parallel warming for one planner; returns false on content
// divergence.
bool RunCase(const std::vector<Model>& repository, PlannerKind planner) {
  AnalyticCostModel costs;

  PlanCache serial_cache(&costs, planner);
  const double serial_seconds = WarmRepository(&serial_cache, repository, nullptr);

  ThreadPool pool(kWarmThreads);
  PlanCache parallel_cache(&costs, planner);
  const double parallel_seconds = WarmRepository(&parallel_cache, repository, &pool);

  const bool identical = CachesIdentical(&serial_cache, &parallel_cache, repository);
  const size_t pairs = repository.size() * (repository.size() - 1);
  std::printf("%-10s %8zu %8zu %14.1f %18.1f %9.2fx %10s\n", PlannerKindName(planner),
              repository.size(), pairs, 1e3 * serial_seconds, 1e3 * parallel_seconds,
              serial_seconds / parallel_seconds, identical ? "identical" : "DIVERGED");
  return identical;
}

// Guard: a compiled-in fault point with injection disabled must cost no more
// than a relaxed atomic load (DESIGN.md §11). Times a few million disabled
// evaluations and fails if the average exceeds a generous per-call budget —
// catching any regression that puts real work on the disabled path.
int CheckDisabledFaultOverhead() {
  fault::Disarm();  // The guard measures the disabled path even under OPTIMUS_FAULTS.
  constexpr int kEvals = 4000000;
  constexpr double kBudgetNs = 50.0;
  Stopwatch watch;
  for (int i = 0; i < kEvals; ++i) {
    fault::MaybeInject("bench.disabled");
  }
  const double ns_per_eval = 1e9 * watch.ElapsedSeconds() / kEvals;
  std::printf("disabled fault point: %.2f ns/eval over %d evals (budget %.0f ns)\n",
              ns_per_eval, kEvals, kBudgetNs);
  if (ns_per_eval > kBudgetNs) {
    std::printf("FAILED: disabled fault injection is not free\n");
    return 1;
  }
  return 0;
}

// Times `count` warm invokes of "fn"; when `traced`, each invoke goes through
// the gateway's sampling path (MaybeStartTrace/Finish) exactly as production
// requests do.
double WarmInvokeSeconds(OptimusPlatform* platform, int count, bool traced) {
  const std::vector<float> input(8, 0.5f);
  Stopwatch watch;
  for (int i = 0; i < count; ++i) {
    if (traced) {
      auto trace = platform->traces().MaybeStartTrace("fn");
      platform->Invoke("fn", input, 1.0, trace.get());
      platform->traces().Finish(std::move(trace));
    } else {
      platform->Invoke("fn", input, 1.0);
    }
  }
  return watch.ElapsedSeconds() / count;
}

// Guard: always-on telemetry must stay effectively free on the invoke path
// (DESIGN.md §12). A/B-times warm invokes with the registry disabled and
// sampling off against the production configuration (registry enabled, 1/64
// trace sampling), interleaving trials and taking the best of each so OS
// noise cancels. Fails when the enabled path costs more than 1% extra and
// the absolute difference exceeds a small floor (clock granularity at
// sub-millisecond invokes).
int CheckTelemetryOverhead(bool smoke) {
  AnalyticCostModel costs;
  PlatformOptions options;
  OptimusPlatform platform(&costs, options);
  platform.Deploy("fn", RepresentativeModels().Build("mobilenet_w1.00"));
  const std::vector<float> input(8, 0.5f);
  platform.Invoke("fn", input, 0.0);  // Cold start once; every timed invoke is warm.

  const int count = smoke ? 100 : 500;
  double disabled_best = 1e30;
  double enabled_best = 1e30;
  const auto measure = [&](int trials) {
    for (int trial = 0; trial < trials; ++trial) {
      platform.metrics().set_enabled(false);
      platform.traces().set_sample_period(0);
      disabled_best = std::min(disabled_best, WarmInvokeSeconds(&platform, count, false));

      platform.metrics().set_enabled(true);
      platform.traces().set_sample_period(64);
      enabled_best = std::min(enabled_best, WarmInvokeSeconds(&platform, count, true));
    }
  };

  constexpr double kAbsoluteFloorSeconds = 2e-6;  // Timer noise at µs invokes.
  const auto over_budget = [&] {
    return enabled_best - disabled_best > kAbsoluteFloorSeconds &&
           (enabled_best - disabled_best) / disabled_best > 0.01;
  };
  measure(/*trials=*/4);
  if (over_budget()) {
    // One shot of machine noise (frequency scaling, a scheduler blip) can
    // swamp a sub-1% signal at ~1ms invokes; measure again before failing.
    std::printf("telemetry overhead above budget on the first pass; re-measuring...\n");
    measure(/*trials=*/8);
  }
  const double relative = (enabled_best - disabled_best) / disabled_best;
  std::printf(
      "telemetry overhead: disabled %.1f us/invoke, enabled(1/64 sampling) %.1f us/invoke "
      "-> %+.2f%% (budget 1%%)\n",
      1e6 * disabled_best, 1e6 * enabled_best, 1e2 * relative);
  if (over_budget()) {
    std::printf("FAILED: enabled telemetry exceeds the invoke-path overhead budget\n");
    return 1;
  }
  benchutil::DumpRegistryPercentiles(platform.metrics(), "warm_parallel");
  return 0;
}

int Run(bool smoke) {
  if (CheckDisabledFaultOverhead() != 0) {
    return 1;
  }
  if (CheckTelemetryOverhead(smoke) != 0) {
    return 1;
  }

  benchutil::PrintHeader("Deploy-time plan-cache warming: serial vs parallel (4 threads)");

  const ModelRegistry registry = RepresentativeModels();
  std::vector<Model> repository;
  const std::vector<std::string> names = RepresentativeModelNames();
  const size_t count = smoke ? 5 : 20;
  for (size_t i = 0; i < names.size() && repository.size() < count; ++i) {
    repository.push_back(registry.Build(names[i]));
  }

  std::printf("%-10s %8s %8s %14s %18s %10s %10s\n", "planner", "models", "pairs",
              "serial(ms)", "parallel4(ms)", "speedup", "contents");
  benchutil::PrintRule(84);

  bool ok = RunCase(repository, PlannerKind::kGroup);
  // The Munkres planner is the heavyweight case planning-strategy caching
  // exists for; skipped in smoke mode to keep CI fast.
  if (!smoke) {
    ok = RunCase(repository, PlannerKind::kBasic) && ok;
  }
  if (!ok) {
    std::printf("FAILED: parallel warming diverged from the serial plan cache\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  return optimus::Run(optimus::benchutil::SmokeMode(argc, argv));
}
