// Figure 16: average service time of serverless ML inference requests on
// GPU-enabled servers.
//
// Expected shape (paper §8.5): Optimus reduces latency by 26.93%~57.08% vs
// the other systems, and GPU service times exceed the CPU-only ones because
// of GPU runtime initialization and host-to-device model loading.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace optimus {
namespace {

void RunWorkload(const char* label, const std::vector<Model>& models, const Trace& trace) {
  const AnalyticCostModel costs;
  benchutil::PrintHeader(std::string("Figure 16: GPU-enabled average service time, ") + label);
  std::printf("%-12s %14s %14s %12s\n", "system", "gpu svc(s)", "cpu svc(s)", "gpu/cpu");
  benchutil::PrintRule(56);

  double optimus_gpu = 0.0;
  double worst_gpu = 0.0;
  double best_gpu_baseline = 1e18;
  for (const SystemType system : benchutil::kAllSystems) {
    SimConfig gpu_config = benchutil::BaseSimConfig(system);
    gpu_config.profile = SystemProfile::Gpu();
    const double gpu_service = RunSimulation(models, trace, gpu_config, costs).AvgServiceTime();
    const double cpu_service =
        RunSimulation(models, trace, benchutil::BaseSimConfig(system), costs).AvgServiceTime();
    std::printf("%-12s %14.3f %14.3f %12.2f\n", SystemTypeName(system), gpu_service, cpu_service,
                gpu_service / cpu_service);
    if (system == SystemType::kOptimus) {
      optimus_gpu = gpu_service;
    } else {
      worst_gpu = std::max(worst_gpu, gpu_service);
      best_gpu_baseline = std::min(best_gpu_baseline, gpu_service);
    }
  }
  std::printf(
      "Optimus GPU reduction: %.2f%% vs best baseline, %.2f%% vs worst (paper: "
      "26.93%%~57.08%%)\n",
      100.0 * (best_gpu_baseline - optimus_gpu) / best_gpu_baseline,
      100.0 * (worst_gpu - optimus_gpu) / worst_gpu);
}

}  // namespace
}  // namespace optimus

int main() {
  const auto models = optimus::benchutil::EndToEndModels();
  const auto names = optimus::benchutil::NamesOf(models);
  optimus::RunWorkload("Poisson workload", models, optimus::benchutil::PoissonWorkload(names));
  optimus::RunWorkload("Azure-like workload", models, optimus::benchutil::AzureWorkload(names));
  return 0;
}
