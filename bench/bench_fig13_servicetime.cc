// Figure 13: average service time of serverless ML inference requests under
// the Poisson and Azure-like workloads, for OpenWhisk, Pagurus, Tetris and
// Optimus.
//
// Expected shape (paper §8.3): Optimus reduces inference latency by
// 24.00%~47.56% vs the other systems; Pagurus beats OpenWhisk (saves
// sandbox/runtime init); Tetris sits between.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace optimus {
namespace {

void RunWorkload(const char* label, const std::vector<Model>& models, const Trace& trace) {
  const AnalyticCostModel costs;
  benchutil::PrintHeader(std::string("Figure 13: average service time, ") + label);
  std::printf("%zu requests over %zu functions\n", trace.size(), models.size());
  std::printf("%-12s %12s %10s %10s %10s %10s\n", "system", "service(s)", "wait(s)", "init(s)",
              "load(s)", "compute(s)");
  benchutil::PrintRule(70);

  double optimus_time = 0.0;
  double worst_time = 0.0;
  double best_baseline = 1e18;
  for (const SystemType system : benchutil::kAllSystems) {
    const SimResult result =
        RunSimulation(models, trace, benchutil::BaseSimConfig(system), costs);
    const double service = result.AvgServiceTime();
    std::printf("%-12s %12.3f %10.3f %10.3f %10.3f %10.3f\n", SystemTypeName(system), service,
                result.AvgWait(), result.AvgInit(), result.AvgLoad(), result.AvgCompute());
    if (system == SystemType::kOptimus) {
      optimus_time = service;
    } else {
      worst_time = std::max(worst_time, service);
      best_baseline = std::min(best_baseline, service);
    }
  }
  std::printf(
      "Optimus reduction: %.2f%% vs best baseline, %.2f%% vs worst (paper: 24.00%%~47.56%%)\n",
      100.0 * (best_baseline - optimus_time) / best_baseline,
      100.0 * (worst_time - optimus_time) / worst_time);
}

}  // namespace
}  // namespace optimus

int main() {
  const auto models = optimus::benchutil::EndToEndModels();
  const auto names = optimus::benchutil::NamesOf(models);
  optimus::RunWorkload("Poisson workload", models, optimus::benchutil::PoissonWorkload(names));
  optimus::RunWorkload("Azure-like workload", models, optimus::benchutil::AzureWorkload(names));
  return 0;
}
