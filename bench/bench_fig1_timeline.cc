// Figure 1: the timeline of serverless ML inference and where each system
// optimizes it.
//
// One request for a function without a warm container arrives at a node that
// holds an idle container of a structurally similar function. The bench
// prints, per system, the phase timeline (sandbox+runtime init, model load /
// package handling / transformation, inference) — reproducing the figure's
// message: existing works shorten step 1 (runtime init) or step 3 (compute),
// Optimus attacks step 2 (model loading), which dominates.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/systems.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

void Run() {
  AnalyticCostModel costs;
  std::map<std::string, Model> repository;
  repository.emplace("function_c", BuildVgg(16));  // Donor's function (Model X).
  repository.emplace("function_d", BuildVgg(19));  // Requested function (Model Y).

  std::map<std::string, const Model*> repository_ptrs;
  for (const auto& [name, model] : repository) {
    repository_ptrs.emplace(name, &model);
  }
  PolicyContext context;
  context.repository = &repository_ptrs;
  context.costs = &costs;
  context.profile = SystemProfile::Cpu();

  Container donor;
  donor.id = 1;
  donor.function = "function_c";
  donor.state = ContainerState::kIdle;
  donor.last_active = 0.0;

  const Model& dest = repository.at("function_d");
  const double compute = context.profile.InferenceCost(dest);

  benchutil::PrintHeader(
      "Figure 1: request timeline for function D (warm idle container of function C exists)");
  std::printf("%-12s %16s %18s %12s %12s %9s\n", "system", "init(s)", "load/transform(s)",
              "compute(s)", "total(s)", "load%");
  benchutil::PrintRule(84);

  for (const SystemType system : benchutil::kAllSystems) {
    auto policy = MakeStartupPolicy(system, context);
    StartupRequest request;
    request.dest = &dest;
    request.donors = {&donor};
    request.resident_functions = {"function_c"};
    request.has_free_slot = false;  // The node is full: the cold-start regime.
    const StartupResult result = policy->Acquire(request);
    const double total = result.init_seconds + result.load_seconds + compute;
    std::printf("%-12s %16.3f %18.3f %12.3f %12.3f %8.1f%%\n", SystemTypeName(system),
                result.init_seconds, result.load_seconds, compute, total,
                100.0 * result.load_seconds / total);
  }

  std::printf(
      "\nPaper check: Pagurus removes init but keeps the full model load; Tetris\n"
      "cannot share across functions (weights differ); Optimus shrinks the dominant\n"
      "model-loading step via inter-function model transformation.\n");
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
