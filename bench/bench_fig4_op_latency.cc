// Figure 4: loading latency for the operation types of ResNet50.
//
// Expected shape (paper §3.2): operation types differ widely; weighted ops
// (CONV, dense) load slower than weight-free ones (activation, pooling, add);
// CONVs of different shapes load in different times (3x3x512 ≈ 1.79x of
// 3x3x64).

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/runtime/cost_model.h"
#include "src/zoo/chain_builder.h"
#include "src/zoo/resnet.h"

namespace optimus {
namespace {

void Run() {
  const AnalyticCostModel costs;
  const Model resnet = BuildResNet(50);

  struct KindStats {
    int count = 0;
    double total = 0.0;
    double min = 1e18;
    double max = 0.0;
  };
  std::map<OpKind, KindStats> stats;
  for (const auto& [id, op] : resnet.ops()) {
    KindStats& entry = stats[op.kind];
    const double cost = costs.OpStructureCost(op.kind, op.attrs);
    entry.count += 1;
    entry.total += cost;
    entry.min = std::min(entry.min, cost);
    entry.max = std::max(entry.max, cost);
  }

  benchutil::PrintHeader("Figure 4: per-operation loading latency in ResNet50");
  std::printf("%-16s %6s %12s %12s %12s %8s\n", "operation", "count", "avg(ms)", "min(ms)",
              "max(ms)", "weights");
  benchutil::PrintRule(72);
  for (const auto& [kind, entry] : stats) {
    std::printf("%-16s %6d %12.3f %12.3f %12.3f %8s\n", OpKindName(kind), entry.count,
                1e3 * entry.total / entry.count, 1e3 * entry.min, 1e3 * entry.max,
                OpKindHasWeights(kind) ? "yes" : "no");
  }

  benchutil::PrintHeader("Figure 4 inset: CONV loading latency by shape");
  std::printf("%-20s %12s\n", "conv shape", "load(ms)");
  benchutil::PrintRule(34);
  const struct {
    const char* label;
    OpAttributes attrs;
  } shapes[] = {
      {"1x1, out=64", ConvAttrs(1, 64, 64)},    {"3x3, out=64", ConvAttrs(3, 64, 64)},
      {"3x3, out=256", ConvAttrs(3, 256, 256)}, {"3x3, out=512", ConvAttrs(3, 512, 512)},
      {"7x7, out=64", ConvAttrs(7, 3, 64)},
  };
  for (const auto& shape : shapes) {
    std::printf("%-20s %12.3f\n", shape.label,
                1e3 * costs.OpStructureCost(OpKind::kConv2D, shape.attrs));
  }
  const double ratio = costs.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 512, 512)) /
                       costs.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 64, 64));
  std::printf("\n3x3x512 / 3x3x64 load ratio: %.2f (paper: ~1.79)\n", ratio);
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::Run();
  return 0;
}
