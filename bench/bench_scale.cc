// Scale sweep: how Optimus' advantage varies with cluster capacity.
//
// The paper's observation (§4.1) is that warm containers are scarce relative
// to the number of model types; this sweep varies container slots per node
// and node count under the Azure-like workload to show where transformation
// matters most (tight capacity) and where every system converges (abundant
// capacity, everything warm).

#include <cstdio>

#include "bench/bench_util.h"

namespace optimus {
namespace {

void SweepContainers() {
  const AnalyticCostModel costs;
  const auto models = benchutil::EndToEndModels();
  const auto names = benchutil::NamesOf(models);
  const Trace trace = benchutil::AzureWorkload(names);

  benchutil::PrintHeader("Scale sweep: containers per node (2 nodes, Azure-like workload)");
  std::printf("%-12s", "containers");
  for (const SystemType system : benchutil::kAllSystems) {
    std::printf(" %12s", SystemTypeName(system));
  }
  std::printf(" %14s\n", "optimus gain");
  benchutil::PrintRule(80);

  for (const int containers : {2, 4, 6, 8, 12, 16}) {
    std::printf("%-12d", containers);
    double openwhisk = 0.0;
    double optimus = 0.0;
    for (const SystemType system : benchutil::kAllSystems) {
      SimConfig config = benchutil::BaseSimConfig(system);
      config.containers_per_node = containers;
      const double service = RunSimulation(models, trace, config, costs).AvgServiceTime();
      std::printf(" %12.3f", service);
      if (system == SystemType::kOpenWhisk) {
        openwhisk = service;
      }
      if (system == SystemType::kOptimus) {
        optimus = service;
      }
    }
    std::printf(" %13.1f%%\n", 100.0 * (openwhisk - optimus) / openwhisk);
  }
}

void SweepNodes() {
  const AnalyticCostModel costs;
  const auto models = benchutil::EndToEndModels();
  const auto names = benchutil::NamesOf(models);
  const Trace trace = benchutil::AzureWorkload(names);

  benchutil::PrintHeader("Scale sweep: node count (4 containers each, Azure-like workload)");
  std::printf("%-12s %12s %12s %14s\n", "nodes", "OpenWhisk", "Optimus", "optimus gain");
  benchutil::PrintRule(54);
  for (const int nodes : {1, 2, 3, 4, 6}) {
    double service[2] = {};
    int i = 0;
    for (const SystemType system : {SystemType::kOpenWhisk, SystemType::kOptimus}) {
      SimConfig config = benchutil::BaseSimConfig(system);
      config.num_nodes = nodes;
      config.containers_per_node = 4;
      service[i++] = RunSimulation(models, trace, config, costs).AvgServiceTime();
    }
    std::printf("%-12d %12.3f %12.3f %13.1f%%\n", nodes, service[0], service[1],
                100.0 * (service[0] - service[1]) / service[0]);
  }
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::SweepContainers();
  optimus::SweepNodes();
  return 0;
}
