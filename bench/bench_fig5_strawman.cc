// Figure 5: the strawman system of §3.3.
//
//  (a) Same model structure, different weights: replacing weights in a warm
//      container vs starting a new container from scratch (paper: 79.83%
//      average latency reduction).
//  (c) In-container scaling of CONV operations with varying kernel sizes:
//      the diagonal is the scratch load time of each shape, off-diagonal
//      (i, j) is the time to Reshape shape i into shape j (paper: scaling
//      takes ~1/3 of a scratch load).
//
// Both the calibrated analytic costs and real wall-clock measurements over
// the actual tensor data paths are reported.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/runtime/cost_model.h"
#include "src/tensor/tensor_ops.h"
#include "src/zoo/chain_builder.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

template <typename Body>
double MedianSeconds(int repetitions, Body&& body) {
  std::vector<double> samples;
  for (int i = 0; i < repetitions; ++i) {
    Stopwatch watch;
    body();
    samples.push_back(watch.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void RunPartA() {
  const AnalyticCostModel costs;
  const SystemProfile profile = SystemProfile::Cpu();

  benchutil::PrintHeader(
      "Figure 5(a): same structure, different weights - weight swap vs cold start");
  std::printf("%-12s %14s %14s %12s\n", "model", "cold(s)", "swap(s)", "reduction");
  benchutil::PrintRule(56);

  double total_reduction = 0.0;
  const Model models[] = {BuildVgg(11),    BuildVgg(16),     BuildVgg(19),
                          BuildResNet(50), BuildResNet(101), BuildResNet(152)};
  for (const Model& model : models) {
    const double cold = profile.InitCost() + costs.ScratchLoadCost(model);
    // The swap replaces every weighted op's weights in the warm container.
    double swap = 0.0;
    for (const auto& [id, op] : model.ops()) {
      if (OpKindHasWeights(op.kind)) {
        swap += costs.ReplaceCost(op.kind, op.attrs);
      }
    }
    const double reduction = 100.0 * (cold - swap) / cold;
    total_reduction += reduction;
    std::printf("%-12s %14.3f %14.3f %11.1f%%\n", model.name().c_str(), cold, swap, reduction);
  }
  std::printf("average reduction: %.1f%% (paper: 79.83%%)\n",
              total_reduction / static_cast<double>(std::size(models)));
}

void RunPartC() {
  const AnalyticCostModel costs;
  const int64_t kernels[] = {1, 3, 5, 7};
  constexpr int64_t kChannels = 64;

  benchutil::PrintHeader(
      "Figure 5(c): CONV scaling matrix, analytic (s). Diagonal = scratch load; (i,j) = reshape "
      "i->j");
  std::printf("%-12s", "from\\to");
  for (const int64_t to : kernels) {
    std::printf(" %7ldx%ld", to, to);
  }
  std::printf("\n");
  benchutil::PrintRule(50);
  for (const int64_t from : kernels) {
    std::printf("%4ldx%-7ld", from, from);
    for (const int64_t to : kernels) {
      double value = 0.0;
      if (from == to) {
        value = costs.AddCost(OpKind::kConv2D, ConvAttrs(to, kChannels, kChannels));
      } else {
        value = costs.ReshapeCost(OpKind::kConv2D, ConvAttrs(from, kChannels, kChannels),
                                  ConvAttrs(to, kChannels, kChannels));
      }
      std::printf(" %9.4f", value);
    }
    std::printf("\n");
  }

  benchutil::PrintHeader(
      "Figure 5(c) measured: real tensor data path (ms). Diagonal = allocate+init; (i,j) = "
      "crop/pad resize");
  Rng rng(5);
  std::printf("%-12s", "from\\to");
  for (const int64_t to : kernels) {
    std::printf(" %7ldx%ld", to, to);
  }
  std::printf("\n");
  benchutil::PrintRule(50);
  for (const int64_t from : kernels) {
    Tensor source(Shape({from, from, kChannels, kChannels}));
    source.FillRandom(&rng);
    std::printf("%4ldx%-7ld", from, from);
    for (const int64_t to : kernels) {
      double seconds = 0.0;
      if (from == to) {
        seconds = MedianSeconds(9, [&] {
          Operation op;
          op.kind = OpKind::kConv2D;
          op.attrs = ConvAttrs(to, kChannels, kChannels);
          op.InitializeWeights(&rng);
        });
      } else {
        const Shape target({to, to, kChannels, kChannels});
        seconds = MedianSeconds(9, [&] { ResizeToShape(source, target); });
      }
      std::printf(" %9.4f", 1e3 * seconds);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper check: off-diagonal (reshape) entries are well below the diagonal\n"
      "(scratch) entry of their column - in-container scaling beats reloading.\n");
}

}  // namespace
}  // namespace optimus

int main() {
  optimus::RunPartA();
  optimus::RunPartC();
  return 0;
}
